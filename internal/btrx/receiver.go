package btrx

import (
	"fmt"
	"math"
	"math/rand"

	"bluefi/internal/bits"
	"bluefi/internal/bt"
	"bluefi/internal/channel"
	"bluefi/internal/dsp"
)

// Receiver demodulates one Bluetooth channel out of a 20 Msps IQ stream
// centered on a WiFi channel.
type Receiver struct {
	// Profile selects the device model.
	Profile Profile
	// ChannelOffsetHz is the Bluetooth carrier's offset from the center
	// of the IQ stream.
	ChannelOffsetHz float64
	// Device provides LAP/UAP for BR access-code correlation and CRCs.
	Device bt.Device
	// MaxSyncErrors is the access-code correlation threshold (bit errors
	// tolerated across the 72-bit access code; hardware correlators
	// typically allow a handful).
	MaxSyncErrors int
	// FilterHalfBandwidthHz is the channel filter cutoff (600 kHz covers
	// the 1 MHz Bluetooth channel).
	FilterHalfBandwidthHz float64
	// Seed drives the profile's RSSI jitter.
	Seed int64
	// LimiterHz caps the discriminator output (FM limiter); 0 derives it
	// from the channel filter bandwidth.
	LimiterHz float64

	fir    *dsp.FIR
	rng    *rand.Rand
	spb    int
	rate   float64
	window []float64 // per-bit decision weights (matched-pulse shape)
	taps   map[float64]isiTaps
}

// NewReceiver builds a receiver; zero-value fields get defaults.
func NewReceiver(p Profile, offsetHz float64, dev bt.Device) (*Receiver, error) {
	r := &Receiver{
		Profile:               p,
		ChannelOffsetHz:       offsetHz,
		Device:                dev,
		MaxSyncErrors:         6,
		FilterHalfBandwidthHz: 500e3,
		Seed:                  7,
		spb:                   20,
		rate:                  20e6,
	}
	fir, err := dsp.LowpassFIR(r.FilterHalfBandwidthHz, r.rate, 101)
	if err != nil {
		return nil, err
	}
	r.fir = fir
	r.rng = rand.New(rand.NewSource(r.Seed))
	// Decision window: a raised-cosine weighting across the bit period,
	// approximating a filter matched to the Gaussian frequency pulse. The
	// GFSK deviation peaks mid-bit while BlueFi's residual OFDM-edge
	// corruption (≤250 ns per edge) lands at bit edges for the worst
	// alignments, so center weighting maximizes the eye on both counts.
	// Decision window: Tukey-shaped — flat over the central half of the
	// bit, cosine-tapered at the edges. The taper suppresses BlueFi's
	// OFDM-edge corruption (which lands at bit edges in the worst
	// alignments) while the flat center keeps the rectangular window's
	// robustness for clean bits.
	r.window = make([]float64, r.spb)
	for k := range r.window {
		x := (float64(k) + 0.5) / float64(r.spb) // (0,1)
		switch {
		case x < 0.25:
			v := math.Sin(2 * math.Pi * x)
			r.window[k] = v * v
		case x > 0.75:
			v := math.Sin(2 * math.Pi * (1 - x))
			r.window[k] = v * v
		default:
			r.window[k] = 1
		}
	}
	r.taps = make(map[float64]isiTaps)
	return r, nil
}

// isiFor returns (calibrating on first use) the ISI taps for a deviation.
func (r *Receiver) isiFor(deviation float64) (isiTaps, error) {
	if t, ok := r.taps[deviation]; ok {
		return t, nil
	}
	t, err := r.calibrateISI(deviation)
	if err != nil {
		return isiTaps{}, err
	}
	r.taps[deviation] = t
	return t, nil
}

// accAt returns the signed per-bit integrator outputs at a sample phase.
func (r *Receiver) accAt(freq []float64, phase int) []float64 {
	n := (len(freq) - phase) / r.spb
	if n <= 0 {
		return nil
	}
	acc := make([]float64, n)
	for i := 0; i < n; i++ {
		base := phase + i*r.spb
		for k, w := range r.window {
			acc[i] += w * freq[base+k]
		}
	}
	return acc
}

// SetFilter replaces the channel filter with the given cutoff and tap
// count — different receiver chips have different selectivity.
func (r *Receiver) SetFilter(cutoffHz float64, taps int) error {
	fir, err := dsp.LowpassFIR(cutoffHz, r.rate, taps)
	if err != nil {
		return err
	}
	r.FilterHalfBandwidthHz = cutoffHz
	r.fir = fir
	return nil
}

// baseband mixes the stream to the Bluetooth channel, applies front-end
// noise per the profile, and band-pass filters.
func (r *Receiver) baseband(iq []complex128) []complex128 {
	shifted := make([]complex128, len(iq))
	copy(shifted, iq)
	dsp.Mix(shifted, -r.ChannelOffsetHz, r.rate, 0)
	if r.Profile.NoiseFigureDB > 0 {
		// Front-end noise referenced to thermal in 20 MHz (−101 dBm),
		// raised by the noise figure.
		sigma := math.Sqrt(dsp.DBmToWatts(-101+r.Profile.NoiseFigureDB) / 2)
		for i := range shifted {
			shifted[i] += complex(sigma*r.rng.NormFloat64(), sigma*r.rng.NormFloat64())
		}
	}
	return r.fir.Apply(shifted)
}

// discriminate runs the FM discriminator with a limiter: the instantaneous
// frequency is clamped to slightly beyond the channel filter bandwidth,
// the behaviour of a limiter-discriminator GFSK detector. Phase glitches
// at OFDM symbol edges (BlueFi's residual CP corruption) show up as huge
// single-sample spikes; the limiter keeps them from dominating a bit's
// integrate-and-dump window, which is exactly why the paper can call this
// corruption "high-frequency noise … likely to be attenuated/removed by
// the band-pass filter on a Bluetooth receiver" (§2.4).
func (r *Receiver) discriminate(bb []complex128) []float64 {
	freq := dsp.Discriminate(bb)
	limHz := r.LimiterHz
	if limHz == 0 {
		limHz = r.FilterHalfBandwidthHz * 1.2
	}
	limit := 2 * 3.141592653589793 * limHz / r.rate
	for i, f := range freq {
		if f > limit {
			freq[i] = limit
		} else if f < -limit {
			freq[i] = -limit
		}
	}
	return freq
}

// sliceBits converts filtered baseband to hard bit decisions at a given
// sample phase using integrate-and-dump over each 20-sample bit. The
// second return carries each bit's integration magnitude — the eye
// opening — used to break ties between candidate timing phases.
func (r *Receiver) sliceBits(freq []float64, phase int) ([]byte, []float64) {
	n := (len(freq) - phase) / r.spb
	if n <= 0 {
		return nil, nil
	}
	out := make([]byte, n)
	margin := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		base := phase + i*r.spb
		for k, w := range r.window {
			acc += w * freq[base+k]
		}
		if acc > 0 {
			out[i] = 1
		}
		margin[i] = math.Abs(acc)
	}
	return out, margin
}

// correlate finds the (phase, offset) whose sliced bits best match the
// target pattern, breaking Hamming-distance ties by the summed eye
// opening over the pattern span — the behaviour of a real correlator
// sampling at the point of maximum eye opening.
func (r *Receiver) correlate(freq []float64, target []byte) (bestErr, bestPhase, bestOff int) {
	bestErr = len(target) + 1
	bestMargin := -1.0
	for phase := 0; phase < r.spb; phase++ {
		sliced, margin := r.sliceBits(freq, phase)
		if len(sliced) < len(target) {
			continue
		}
		for off := 0; off+len(target) <= len(sliced); off++ {
			d := bits.HammingDistance(sliced[off:off+len(target)], target)
			if d > bestErr {
				continue
			}
			// Margin over the sync span plus the following payload
			// region: real receivers keep tracking symbol timing, so the
			// chosen phase should open the eye over the whole packet.
			end := off + len(target) + 256
			if end > len(margin) {
				end = len(margin)
			}
			var m float64
			for i := off; i < end; i++ {
				m += margin[i]
			}
			if d < bestErr || m > bestMargin {
				bestErr, bestPhase, bestOff, bestMargin = d, phase, off, m
			}
		}
	}
	return bestErr, bestPhase, bestOff
}

// Report is the outcome of one packet reception attempt.
type Report struct {
	Detected    bool
	Result      bt.DecodeResult
	RSSIdBm     float64
	SyncErrors  int
	SampleStart int // where the access code begins in the stream
	// Adv carries the parsed advertising PDU when ReceiveBLE decoded one
	// (nil otherwise) — the scanner reads the PDU type and addresses.
	Adv *bt.Advertisement
	// Data carries the parsed data-channel PDU from ReceiveBLEData; it
	// may be non-nil with Result.CRCError set when the header parsed but
	// the CRC failed.
	Data *bt.DataPDU
}

// Reseed re-derives the receiver's front-end noise and RSSI jitter
// source. The scanner gives every capture its own counter-derived seed
// so a parallel sweep consumes randomness identically to a serial one.
func (r *Receiver) Reseed(seed int64) {
	r.Seed = seed
	r.rng = rand.New(rand.NewSource(seed))
}

// ReceiveBR searches the stream for a BR/EDR packet with the receiver's
// access code and decodes it. clk is the whitening clock the transmitter
// used (known to a connected/paging receiver).
func (r *Receiver) ReceiveBR(iq []complex128, clk uint32) (Report, error) {
	ac, err := bt.AccessCode(r.Device.LAP, true)
	if err != nil {
		return Report{}, err
	}
	bb := r.baseband(iq)
	freq := r.discriminate(bb)

	bestErr, bestPhase, bestOff := r.correlate(freq, ac)
	rep := Report{SyncErrors: bestErr}
	if bestErr > r.MaxSyncErrors {
		rep.RSSIdBm = r.reportRSSI(bb)
		return rep, nil
	}
	rep.Detected = true
	rep.SampleStart = bestPhase + bestOff*r.spb
	sliced, _ := r.sliceBits(freq, bestPhase)
	stream := sliced[bestOff+len(ac):]
	rep.Result = bt.DecodeAirBits(stream, r.Device, clk)
	pktSamples := (len(ac) + 54) * r.spb // at least header span
	end := rep.SampleStart + pktSamples
	if end > len(bb) {
		end = len(bb)
	}
	rep.RSSIdBm = r.reportRSSI(bb[rep.SampleStart:end])
	return rep, nil
}

// ReceiveBLE searches for a BLE advertising packet on the given
// advertising channel index.
func (r *Receiver) ReceiveBLE(iq []complex128, advChannel int) (Report, error) {
	isAdv := false
	for _, c := range bt.AdvChannels {
		if advChannel == c {
			isAdv = true
		}
	}
	if !isAdv {
		return Report{}, fmt.Errorf("btrx: channel %d is not an advertising channel", advChannel)
	}
	// Correlation target: preamble + access address bits.
	target := bt.PreambleAA(bt.AdvAccessAddress)
	bb := r.baseband(iq)
	freq := r.discriminate(bb)

	bestErr, bestPhase, bestOff := r.correlate(freq, target)
	rep := Report{SyncErrors: bestErr}
	if bestErr > r.maxAAErrors() {
		rep.RSSIdBm = r.reportRSSI(bb)
		return rep, nil
	}
	rep.Detected = true
	rep.SampleStart = bestPhase + bestOff*r.spb
	sliced, _ := r.sliceBits(freq, bestPhase)
	adv, ok := bt.DecodeAdvertisement(sliced[bestOff+len(target):], advChannel)
	if ok {
		rep.Result = bt.DecodeResult{OK: true, Payload: adv.Data}
		rep.Adv = adv
	} else {
		rep.Result = bt.DecodeResult{CRCError: true}
	}
	end := rep.SampleStart + 376*r.spb
	if end > len(bb) {
		end = len(bb)
	}
	rep.RSSIdBm = r.reportRSSI(bb[rep.SampleStart:end])
	return rep, nil
}

// maxAAErrors is the access-address correlation threshold: stricter
// than BR sync words (32 bits vs 72).
func (r *Receiver) maxAAErrors() int {
	if r.MaxSyncErrors > 3 {
		return 3
	}
	return r.MaxSyncErrors
}

// ReceiveBLEData searches the stream for a BLE data physical channel
// PDU on a connection: aa is the access address assigned by the
// CONN_IND, dataChannel keys the whitening and crcInit seeds the
// CRC-24. A Report with Detected set and Result.CRCError records an
// access-address hit whose payload failed the CRC — the scanner counts
// those separately from clean misses.
func (r *Receiver) ReceiveBLEData(iq []complex128, aa uint32, dataChannel int, crcInit uint32) (Report, error) {
	if dataChannel < 0 || dataChannel >= bt.NumLEDataChannels {
		return Report{}, fmt.Errorf("btrx: data channel %d out of range", dataChannel)
	}
	target := bt.PreambleAA(aa)
	bb := r.baseband(iq)
	freq := r.discriminate(bb)

	bestErr, bestPhase, bestOff := r.correlate(freq, target)
	rep := Report{SyncErrors: bestErr}
	if bestErr > r.maxAAErrors() {
		rep.RSSIdBm = r.reportRSSI(bb)
		return rep, nil
	}
	rep.Detected = true
	rep.SampleStart = bestPhase + bestOff*r.spb
	sliced, _ := r.sliceBits(freq, bestPhase)
	pdu, ok := bt.DecodeDataPDU(sliced[bestOff+len(target):], dataChannel, crcInit)
	rep.Data = pdu
	if ok {
		rep.Result = bt.DecodeResult{OK: true, Payload: pdu.Payload}
	} else {
		rep.Result = bt.DecodeResult{CRCError: true}
	}
	end := rep.SampleStart + 376*r.spb
	if end > len(bb) {
		end = len(bb)
	}
	rep.RSSIdBm = r.reportRSSI(bb[rep.SampleStart:end])
	return rep, nil
}

// DetectAtPhase demodulates the stream and returns MLSE bit decisions at
// a given sample phase — a diagnostic/tooling entry point that skips
// access-code search.
func (r *Receiver) DetectAtPhase(iq []complex128, phase int, deviation float64) ([]byte, error) {
	taps, err := r.isiFor(deviation)
	if err != nil {
		return nil, err
	}
	bb := r.baseband(iq)
	freq := r.discriminate(bb)
	return mlseDetect(r.accAt(freq, phase), taps), nil
}

// reportRSSI converts filtered in-band power to the device's reported
// RSSI, applying calibration offset and jitter.
func (r *Receiver) reportRSSI(bb []complex128) float64 {
	rssi := channel.MeasureRSSIDBm(bb) + r.Profile.RSSIOffsetDB
	if r.Profile.RSSIJitterDB > 0 {
		rssi += r.rng.NormFloat64() * r.Profile.RSSIJitterDB
	}
	return rssi
}

// Reporting reports whether the device still reports measurements at
// elapsed seconds t (iPhone power-save stops them after ≈110 s).
func (p Profile) Reporting(t float64) bool {
	return p.PowerSaveAfterS == 0 || t < p.PowerSaveAfterS
}

// String describes the receiver configuration.
func (r *Receiver) String() string {
	return fmt.Sprintf("%s@%+.1fMHz", r.Profile.Name, r.ChannelOffsetHz/1e6)
}

// SliceAtPhase demodulates the stream with the production slicer at a
// given sample phase — a diagnostic/tooling entry point that skips
// access-code search.
func (r *Receiver) SliceAtPhase(iq []complex128, phase int) []byte {
	bb := r.baseband(iq)
	freq := r.discriminate(bb)
	out, _ := r.sliceBits(freq, phase)
	return out
}

// DemodAtPhase demodulates the stream with the production slicer at a
// given sample phase and returns the bit decisions with their signed
// integration values — the synthesis-time rehearsal entry point.
func (r *Receiver) DemodAtPhase(iq []complex128, phase int) ([]byte, []float64) {
	bb := r.baseband(iq)
	freq := r.discriminate(bb)
	bits, _ := r.sliceBits(freq, phase)
	acc := r.accAt(freq, phase)
	return bits, acc
}

// ReceiveEDR searches the stream for an EDR packet: the access code and
// header travel as GFSK, the payload as DPSK. rate must match the
// transmitted packet type (the mode is negotiated via LMP on real links).
func (r *Receiver) ReceiveEDR(iq []complex128, clk uint32, rate bt.EDRRate) (Report, error) {
	ac, err := bt.AccessCode(r.Device.LAP, true)
	if err != nil {
		return Report{}, err
	}
	bb := r.baseband(iq)
	freq := r.discriminate(bb)

	bestErr, bestPhase, bestOff := r.correlate(freq, ac)
	rep := Report{SyncErrors: bestErr}
	if bestErr > r.MaxSyncErrors {
		rep.RSSIdBm = r.reportRSSI(bb)
		return rep, nil
	}
	rep.Detected = true
	rep.SampleStart = bestPhase + bestOff*r.spb

	// GFSK header: 54 whitened FEC(1/3) bits right after the access code.
	sliced, _ := r.sliceBits(freq, bestPhase)
	hdrStream := sliced[bestOff+len(ac):]
	if len(hdrStream) < 54 {
		rep.Result = bt.DecodeResult{HeaderError: true}
		return rep, nil
	}
	wh := bt.NewWhitener(clk)
	hdr := wh.Whiten(append([]byte{}, hdrStream[:54]...))
	hdr10, err := bits.MajorityDecode(hdr, 3)
	if err != nil || !bt.CheckHEC(hdr10[:10], hdr10[10:18], r.Device.UAP) {
		rep.Result = bt.DecodeResult{HeaderError: true}
		rep.RSSIdBm = r.reportRSSI(bb)
		return rep, nil
	}

	// DPSK payload: recover the unwrapped phase through a wider filter —
	// 1 Msym/s DPSK occupies more bandwidth than GFSK, and the narrow
	// GFSK channel filter would smear symbol transitions into ISI.
	wide, err := dsp.LowpassFIR(900e3, r.rate, 81)
	if err != nil {
		return Report{}, err
	}
	shifted := make([]complex128, len(iq))
	copy(shifted, iq)
	dsp.Mix(shifted, -r.ChannelOffsetHz, r.rate, 0)
	theta := dsp.Unwrap(dsp.Phase(wide.Apply(shifted)))
	payloadStart := rep.SampleStart + bt.EDRPayloadOffsetFromAccessCode(r.spb)
	if payloadStart >= len(theta) {
		rep.Result = bt.DecodeResult{CRCError: true}
		return rep, nil
	}
	rep.Result = bt.DecodeEDRPayload(theta, payloadStart, r.spb, rate, r.Device, clk, 54)
	end := payloadStart + 400*r.spb
	if end > len(bb) {
		end = len(bb)
	}
	rep.RSSIdBm = r.reportRSSI(bb[rep.SampleStart:end])
	return rep, nil
}
