package btrx

import (
	"math"

	"bluefi/internal/gfsk"
)

// MLSE bit detection. The post-discriminator, per-bit integrator output of
// clean GFSK is linear in the transmitted bits: acc_i = Σ_k g_k·b_{i−k}
// with b ∈ {−1,+1} and g the Gaussian-pulse/channel-filter/decision-window
// composite response. Commercial Bluetooth receivers exploit this with
// sequence detection rather than symbol-by-symbol slicing, which is what
// lets them ride out the inter-symbol interference of BT=0.5 shaping plus
// BlueFi's residual in-band impairments. This detector runs a 4-state
// Viterbi over (b_{i−1}, b_i) with the taps calibrated once per receiver
// configuration by passing a known reference waveform through the exact
// same demodulation chain.

// isiTaps holds the calibrated composite response: g0 (cursor), g1
// (adjacent bits) and g2 (second neighbours).
type isiTaps struct {
	g0, g1, g2 float64
}

// calibrateISI measures the composite bit response for a GFSK deviation by
// demodulating two reference waveforms (all zeros, and a single one) with
// the receiver's own filter and decision window.
func (r *Receiver) calibrateISI(deviation float64) (isiTaps, error) {
	cfg := gfsk.Config{
		SampleRate: r.rate,
		BitRate:    r.rate / float64(r.spb),
		Deviation:  deviation,
		BT:         0.5,
		PadBits:    8,
	}
	const probeLen = 33
	mkAcc := func(bitsIn []byte) ([]float64, error) {
		iq, err := cfg.Modulate(bitsIn)
		if err != nil {
			return nil, err
		}
		bb := r.fir.Apply(iq)
		freq := r.discriminate(bb)
		acc := make([]float64, probeLen)
		start := cfg.PayloadStart()
		for i := range acc {
			base := start + i*r.spb
			for k, w := range r.window {
				acc[i] += w * freq[base+k]
			}
		}
		return acc, nil
	}
	zeros := make([]byte, probeLen)
	one := make([]byte, probeLen)
	one[probeLen/2] = 1
	accZ, err := mkAcc(zeros)
	if err != nil {
		return isiTaps{}, err
	}
	accO, err := mkAcc(one)
	if err != nil {
		return isiTaps{}, err
	}
	mid := probeLen / 2
	// b flips from −1 to +1 at mid: response g_k = (accO−accZ)/2 at lag k.
	return isiTaps{
		g0: (accO[mid] - accZ[mid]) / 2,
		g1: (accO[mid+1] - accZ[mid+1]) / 2,
		g2: (accO[mid+2] - accZ[mid+2]) / 2,
	}, nil
}

// adaptTaps rescales the calibrated taps to the observed stream: tentative
// hard decisions give predicted integrator outputs, and a least-squares
// gain aligns the model with reality (the waveform may be compressed by
// the limiter or ride on in-band interference). This mirrors the
// reference-level adaptation real demodulators perform.
func adaptTaps(acc []float64, taps isiTaps) isiTaps {
	sgn := func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return -1
	}
	var num, den float64
	for i := 1; i+1 < len(acc); i++ {
		pred := taps.g0*sgn(acc[i]) + taps.g1*(sgn(acc[i-1])+sgn(acc[i+1]))
		num += acc[i] * pred
		den += pred * pred
	}
	if den == 0 {
		return taps
	}
	g := num / den
	if g < 0.2 || g > 5 {
		return taps
	}
	taps.g0 *= g
	taps.g1 *= g
	taps.g2 *= g
	return taps
}

// mlseDetect runs maximum-likelihood sequence estimation over the per-bit
// integrator outputs acc using the calibrated ISI taps (first-neighbour
// model; g2 is measured for diagnostics but small enough to ignore in the
// branch metric), returning hard bit decisions.
func mlseDetect(acc []float64, taps isiTaps) []byte {
	n := len(acc)
	if n == 0 {
		return nil
	}
	taps = adaptTaps(acc, taps)
	sgn := func(b int) float64 {
		if b == 1 {
			return 1
		}
		return -1
	}
	// State s ∈ {0..3} encodes (b_{i−1} in bit 1, b_i in bit 0). The
	// metric for acc_i is charged on the transition that reveals b_{i+1}.
	const inf = math.MaxFloat64
	metric := [4]float64{}
	for s := range metric {
		metric[s] = inf
	}
	// Initialize assuming b_{−2}=b_{−1}=0-bits (−1): GFSK streams begin
	// with carrier pad, which demodulates near zero; allow every start
	// state but bias none.
	for s := 0; s < 4; s++ {
		metric[s] = 0
	}
	type bp struct{ prev [4]int8 }
	back := make([]bp, n)
	for i := 0; i < n; i++ {
		var next [4]float64
		var prev [4]int8
		for s := range next {
			next[s] = inf
			prev[s] = -1
		}
		for s := 0; s < 4; s++ {
			if metric[s] == inf {
				continue
			}
			bPrev := (s >> 1) & 1
			bCur := s & 1
			for bNext := 0; bNext < 2; bNext++ {
				// Predicted acc_i uses b_{i−1}, b_i, b_{i+1}; the i-th
				// observation is evaluated when b_{i+1} is hypothesized.
				pred := taps.g1*sgn(bPrev) + taps.g0*sgn(bCur) + taps.g1*sgn(bNext)
				d := acc[i] - pred
				cost := d * d
				// Clip the per-observation cost: BlueFi's residual
				// impairments are bursty outliers, not Gaussian noise; a
				// robust metric stops one corrupted observation from
				// dragging the survivor path through its neighbours.
				if clip := taps.g0 * taps.g0; cost > clip {
					cost = clip
				}
				m := metric[s] + cost
				ns := (bCur << 1) | bNext
				if m < next[ns] {
					next[ns] = m
					prev[ns] = int8(s)
				}
			}
		}
		metric = next
		back[i].prev = prev
	}
	// Pick the best terminal state and trace back. State after step n−1 is
	// (b_{n−1}, b_n-hypothesis); the hypothesis bit is beyond the stream
	// and is discarded.
	best, bestM := 0, inf
	for s, m := range metric {
		if m < bestM {
			best, bestM = s, m
		}
	}
	out := make([]byte, n)
	s := best
	for i := n - 1; i >= 0; i-- {
		out[i] = byte((s >> 1) & 1) // b_i is the upper bit of the state after step i
		p := back[i].prev[s]
		if p < 0 {
			break
		}
		s = int(p)
	}
	return out
}
