// Package btrx simulates unmodified Bluetooth receivers: a band-pass
// channel filter, an FM discriminator, integrate-and-dump bit slicing with
// timing search, access-code correlation, and BR/BLE packet decoding. It
// stands in for the paper's smartphones and the FTS4BT sniffer (DESIGN.md
// §2): the decode structure is the canonical low-cost GFSK receiver the
// paper reasons about — in particular its channel filter is what
// attenuates BlueFi's high-frequency CP-corruption noise (§2.4).
package btrx

// Profile captures how a particular receiver device presents measurements:
// RF front-end noise figure (sensitivity), RSSI calibration offset and
// report jitter, and platform quirks such as iPhone's power-save cutoff.
// Values are chosen to reproduce the qualitative differences visible in
// Figs. 5–8 (S6 reads 6–10 dB below the others; iPhone fluctuates and
// stops reporting after ≈110 s).
type Profile struct {
	Name string
	// NoiseFigureDB adds receiver front-end noise, degrading sensitivity.
	NoiseFigureDB float64
	// RSSIOffsetDB shifts reported RSSI (chip calibration differences).
	RSSIOffsetDB float64
	// RSSIJitterDB is the standard deviation of per-report RSSI noise.
	RSSIJitterDB float64
	// PowerSaveAfterS stops measurement reports after this many seconds
	// (0 = never). The iPhone trace in Fig. 5 goes quiet near 110 s.
	PowerSaveAfterS float64
}

// The three receiver devices used throughout the paper's evaluation.
var (
	Pixel  = Profile{Name: "Pixel", NoiseFigureDB: 4, RSSIOffsetDB: 0, RSSIJitterDB: 1.2}
	S6     = Profile{Name: "S6", NoiseFigureDB: 7, RSSIOffsetDB: -8, RSSIJitterDB: 1.5}
	IPhone = Profile{Name: "iPhone", NoiseFigureDB: 5, RSSIOffsetDB: -2, RSSIJitterDB: 3.5, PowerSaveAfterS: 110}
	// Sniffer models the FTS4BT/BlueCore measurement hardware: low noise,
	// no calibration offset, no power saving.
	Sniffer = Profile{Name: "FTS4BT", NoiseFigureDB: 3, RSSIOffsetDB: 0, RSSIJitterDB: 0.5}
)

// Profiles lists the phone profiles in the order the paper plots them.
var Profiles = []Profile{Pixel, S6, IPhone}
