package bluefi

// Multi-session A2DP acceptance tests (DESIGN.md §14): the
// SessionManager's admission projection, the bounded pending queue and
// its eviction-driven promotion, the per-session slack export, the
// session SLO specs, and the EDF job queue the sessions ride on.

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// lightAudio is the session shape the suite multiplexes: DM1 packets (a
// fast synthesis unit) carrying 4 SBC frames at 16 kHz mono — 7 L2CAP
// segments per media packet every ~6.4 slots — with a generous slot
// budget so only injected latency can miss.
func lightAudio(lap uint32) AudioConfig {
	return AudioConfig{
		Device:          Device{LAP: lap, UAP: 0x9A},
		PacketType:      DM1,
		SBC:             SBCConfig{SampleRateHz: 16000, Blocks: 4, Subbands: 4, Bitpool: 31},
		FramesPerPacket: 4,
		SlotBudget:      time.Minute,
	}
}

func TestSessionManagerAdmitSendEvict(t *testing.T) {
	reg := NewTelemetry()
	pool, err := NewPool(Options{Mode: RealTime, Telemetry: reg, EDF: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sm, err := pool.NewSessionManager(SessionManagerConfig{ServiceSlots: 0.25})
	if err != nil {
		t.Fatal(err)
	}

	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := sm.Admit(SessionConfig{
			ID:    fmt.Sprintf("s%d", i),
			Audio: lightAudio(uint32(0x100 + i)),
		})
		if err != nil {
			t.Fatalf("admit s%d: %v", i, err)
		}
		sessions = append(sessions, s)
	}

	const packets = 6
	for p := 0; p < packets; p++ {
		for _, s := range sessions {
			txs, err := s.Send(chaosTone(s.Stream(), p*s.Stream().SamplesPerSend()))
			if err != nil {
				t.Fatalf("session %s send %d: %v", s.ID(), p, err)
			}
			if txs == nil {
				t.Fatalf("session %s send %d shed without faults or shedding state", s.ID(), p)
			}
		}
	}

	reps := sm.Sessions()
	if len(reps) != 3 {
		t.Fatalf("%d session reports, want 3", len(reps))
	}
	for _, rep := range reps {
		if rep.Shipped != packets || rep.Dropped != 0 || rep.ShippedRatio != 1 {
			t.Fatalf("session %s shipped %d dropped %d ratio %v, want %d/0/1",
				rep.ID, rep.Shipped, rep.Dropped, rep.ShippedRatio, packets)
		}
		if rep.Segments == 0 {
			t.Fatalf("session %s exported no deadline-slack samples", rep.ID)
		}
		if rep.DeadlineMisses != 0 {
			t.Fatalf("session %s missed %d deadlines under a minute-long budget", rep.ID, rep.DeadlineMisses)
		}
		if rep.MinSlackSeconds <= 0 || rep.P99SlackSeconds <= 0 || rep.P50SlackSeconds < rep.P99SlackSeconds {
			t.Fatalf("session %s slack export inconsistent: min %v p50 %v p99 %v",
				rep.ID, rep.MinSlackSeconds, rep.P50SlackSeconds, rep.P99SlackSeconds)
		}
	}

	mrep := sm.Report()
	if mrep.Budget.TotalShipped != packets*3 {
		t.Fatalf("budget shipped %d, want %d", mrep.Budget.TotalShipped, packets*3)
	}
	if mrep.LastProj.Sessions != 3 || mrep.LastProj.MissRatio > 0.05 {
		t.Fatalf("last projection %+v, want 3 sessions within the miss budget", mrep.LastProj)
	}

	// Eviction: removed from the fleet, stream stays usable, decoupled
	// from the budget.
	if !sm.Evict("s1") {
		t.Fatal("Evict(s1) = false for a live session")
	}
	if sm.Evict("s1") {
		t.Fatal("double eviction reported success")
	}
	if got := len(sm.Sessions()); got != 2 {
		t.Fatalf("%d sessions after eviction, want 2", got)
	}
	evicted := sessions[1]
	if txs, err := evicted.Send(chaosTone(evicted.Stream(), 0)); err != nil || txs == nil {
		t.Fatalf("evicted session's stream must stay usable: txs=%v err=%v", txs, err)
	}
	if rep := evicted.Report(); !rep.Evicted {
		t.Fatal("evicted session's report must say so")
	}
}

func TestSessionManagerValidation(t *testing.T) {
	pool, err := NewPool(Options{Mode: RealTime, EDF: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sm, err := pool.NewSessionManager(SessionManagerConfig{ServiceSlots: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Admit(SessionConfig{Audio: lightAudio(1)}); err == nil {
		t.Fatal("empty session ID must be rejected")
	}
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		if _, err := sm.Admit(SessionConfig{ID: "w", Weight: w, Audio: lightAudio(1)}); err == nil {
			t.Fatalf("weight %v must be rejected", w)
		}
	}
	if _, err := sm.Admit(SessionConfig{ID: "dup", Audio: lightAudio(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Admit(SessionConfig{ID: "dup", Audio: lightAudio(2)}); err == nil {
		t.Fatal("duplicate session ID must be rejected")
	}

	closed, err := NewPool(Options{Mode: RealTime}, 1)
	if err != nil {
		t.Fatal(err)
	}
	closed.Close()
	if _, err := closed.NewSessionManager(SessionManagerConfig{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("manager on a closed pool: %v, want ErrPoolClosed", err)
	}
}

// TestSessionManagerAdmissionKnee ramps identical sessions into a
// single-worker pool with a pinned per-segment service time until the
// projection refuses — the unit-scale version of the capacity-knee
// soak. The knee must exist, sit past at least one admitted session,
// and be sticky: the session after a rejection is rejected too.
func TestSessionManagerAdmissionKnee(t *testing.T) {
	pool, err := NewPool(Options{Mode: RealTime, EDF: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sm, err := pool.NewSessionManager(SessionManagerConfig{ServiceSlots: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	var rejection error
	for i := 0; i < 50 && rejection == nil; i++ {
		_, err := sm.Admit(SessionConfig{ID: fmt.Sprintf("s%d", i), Audio: lightAudio(uint32(i + 1))})
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrAdmissionRejected):
			rejection = err
		default:
			t.Fatalf("admit s%d failed outside the admission contract: %v", i, err)
		}
	}
	if rejection == nil {
		t.Fatal("50 sessions never hit the 1-worker knee")
	}
	if admitted == 0 {
		t.Fatal("the very first session must fit an idle pool")
	}
	if _, err := sm.Admit(SessionConfig{ID: "late", Audio: lightAudio(99)}); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("admission past the knee: %v, want ErrAdmissionRejected", err)
	}
	if proj := sm.Report().LastProj; proj.MissRatio <= 0.05 {
		t.Fatalf("last projection %+v should show the refused miss ratio", proj)
	}
}

func TestSessionManagerQueuePromotion(t *testing.T) {
	pool, err := NewPool(Options{Mode: RealTime, EDF: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sm, err := pool.NewSessionManager(SessionManagerConfig{ServiceSlots: 0.4, AdmissionQueue: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Fill to the knee via Enqueue: admittable sessions resolve
	// immediately, the first that does not is the queue head.
	var live []string
	var pHead *PendingSession
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("s%d", i)
		p, err := sm.Enqueue(SessionConfig{ID: id, Audio: lightAudio(uint32(i + 1))})
		if err != nil {
			t.Fatalf("enqueue %s below the knee: %v", id, err)
		}
		if _, ready, _ := p.Session(); !ready {
			pHead = p
			break
		}
		live = append(live, id)
	}
	if pHead == nil || len(live) == 0 {
		t.Fatalf("knee not found: %d live sessions", len(live))
	}
	if sm.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 parked session", sm.Pending())
	}

	// Queue capacity 2: one more parks, the next is refused outright.
	p2, err := sm.Enqueue(SessionConfig{ID: "second", Audio: lightAudio(90)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ready, _ := p2.Session(); ready {
		t.Fatal("second enqueue resolved with the pool at the knee")
	}
	if _, err := sm.Enqueue(SessionConfig{ID: "third", Audio: lightAudio(91)}); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("enqueue on a full queue: %v, want the rejection to propagate", err)
	}
	if _, err := sm.Enqueue(SessionConfig{ID: "second", Audio: lightAudio(92)}); err == nil {
		t.Fatal("duplicate pending ID must be refused")
	}

	// Evictions free headroom and promote in FIFO order: whenever
	// "second" has resolved, the head must have resolved first — the
	// queue never lets a later arrival jump it.
	fifoInvariant := func() {
		t.Helper()
		select {
		case <-p2.Done():
			select {
			case <-pHead.Done():
			default:
				t.Fatal("second promoted while the queue head was still parked")
			}
		default:
		}
	}
	fifoInvariant()
	for _, id := range live {
		if _, ready, _ := p2.Session(); ready {
			break
		}
		if !sm.Evict(id) {
			t.Fatalf("evicting live session %s failed", id)
		}
		fifoInvariant()
	}
	for _, p := range []*PendingSession{pHead, p2} {
		s, ready, err := p.Session()
		if !ready || err != nil || s == nil {
			t.Fatalf("parked session unresolved after draining the fleet: ready=%v err=%v", ready, err)
		}
		if txs, err := s.Send(chaosTone(s.Stream(), 0)); err != nil || txs == nil {
			t.Fatalf("promoted session %s cannot send: txs=%v err=%v", s.ID(), txs, err)
		}
	}
	if sm.Pending() != 0 {
		t.Fatalf("pending = %d after promotions, want 0", sm.Pending())
	}
}

func TestSessionSLOSpecs(t *testing.T) {
	reg := NewTelemetry()
	pool, err := NewPool(Options{Mode: RealTime, Telemetry: reg, EDF: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sm, err := pool.NewSessionManager(SessionManagerConfig{ServiceSlots: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	specs := sm.SessionSLOSpecs()
	if len(specs) != 2 {
		t.Fatalf("%d session SLO specs, want 2", len(specs))
	}
	byName := map[string]int{}
	for i, sp := range specs {
		byName[sp.Name] = i
	}
	di, ok := byName["a2dp_session_delivery"]
	if !ok {
		t.Fatalf("missing a2dp_session_delivery spec: %+v", specs)
	}
	if specs[di].Objective != 0.8 {
		t.Fatalf("delivery objective %v, want the 0.8 global floor", specs[di].Objective)
	}
	if _, ok := byName["a2dp_session_deadline"]; !ok {
		t.Fatalf("missing a2dp_session_deadline spec: %+v", specs)
	}

	s, err := sm.Admit(SessionConfig{ID: "s", Audio: lightAudio(1)})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if _, err := s.Send(chaosTone(s.Stream(), p)); err != nil {
			t.Fatal(err)
		}
	}
	good, total := specs[di].Indicator()
	if good != 3 || total != 3 {
		t.Fatalf("delivery indicator %v/%v after 3 clean sends, want 3/3", good, total)
	}
	good, total = specs[byName["a2dp_session_deadline"]].Indicator()
	if total == 0 || good != total {
		t.Fatalf("deadline indicator %v/%v after clean sends, want all good", good, total)
	}

	// No telemetry, no specs: the SLO layer is opt-in like everywhere
	// else in the library.
	bare, err := NewPool(Options{Mode: RealTime}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	bsm, err := bare.NewSessionManager(SessionManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if specs := bsm.SessionSLOSpecs(); specs != nil {
		t.Fatalf("specs without telemetry: %+v, want nil", specs)
	}
}

// TestJobQueueEDF pins the pool-level EDF contract: pops come out
// earliest-deadline-first with deadline-less jobs last, and DropOldest
// under EDF evicts the job with the most slack to spare.
func TestJobQueueEDF(t *testing.T) {
	mkJob := func(deadline uint64) *poolJob {
		return &poolJob{done: make(chan struct{}), deadline: deadline}
	}

	t.Run("PopOrder", func(t *testing.T) {
		q := newJobQueue(4, Reject, true, nil)
		jobs := []*poolJob{mkJob(30), mkJob(noDeadline), mkJob(10), mkJob(20)}
		for _, j := range jobs {
			if err := q.push(j); err != nil {
				t.Fatal(err)
			}
		}
		want := []*poolJob{jobs[2], jobs[3], jobs[0], jobs[1]}
		for i, w := range want {
			if got := q.pop(); got != w {
				t.Fatalf("pop %d: deadline %d, want %d", i, got.deadline, w.deadline)
			}
		}
	})

	t.Run("FIFOWithinDeadline", func(t *testing.T) {
		q := newJobQueue(3, Reject, true, nil)
		a, b := mkJob(10), mkJob(10)
		if err := q.push(a); err != nil {
			t.Fatal(err)
		}
		if err := q.push(b); err != nil {
			t.Fatal(err)
		}
		if got := q.pop(); got != a {
			t.Fatal("equal deadlines must pop in submission order")
		}
	})

	t.Run("DropOldestEvictsMostSlack", func(t *testing.T) {
		q := newJobQueue(2, DropOldest, true, nil)
		slack, tight := mkJob(100), mkJob(5)
		if err := q.push(slack); err != nil {
			t.Fatal(err)
		}
		if err := q.push(tight); err != nil {
			t.Fatal(err)
		}
		mid := mkJob(50)
		if err := q.push(mid); err != nil {
			t.Fatalf("DropOldest refused the new job: %v", err)
		}
		select {
		case <-slack.done:
			if !errors.Is(slack.err, ErrJobShed) {
				t.Fatalf("evicted job failed with %v, want ErrJobShed", slack.err)
			}
		default:
			t.Fatal("the most-slack job was not the one evicted")
		}
		if got := q.pop(); got != tight {
			t.Fatalf("pop deadline %d, want the tight job", got.deadline)
		}
		if got := q.pop(); got != mid {
			t.Fatalf("pop deadline %d, want the new mid job", got.deadline)
		}
	})
}

// FuzzSessionAdmit drives the admission controller with arbitrary
// session shapes: whatever the inputs, Admit must decide without
// panicking, reject unusable weights, refuse duplicates, and keep
// Evict/accounting consistent for whatever it admits.
func FuzzSessionAdmit(f *testing.F) {
	f.Add("s", 1.0, 0, 0, uint8(0))
	f.Add("", 0.0, 1, 16000, uint8(1))
	f.Add("dup", math.NaN(), -3, 44100, uint8(9))
	f.Add("w", math.Inf(1), 200, 48000, uint8(5))
	f.Add("knee", 2.5, 8, 32000, uint8(3))
	f.Fuzz(func(t *testing.T, id string, weight float64, frames int, rate int, pt uint8) {
		pool, err := NewPool(Options{Mode: RealTime, EDF: true}, 1)
		if err != nil {
			t.Skip("pool unavailable")
		}
		defer pool.Close()
		sm, err := pool.NewSessionManager(SessionManagerConfig{ServiceSlots: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := SessionConfig{
			ID:     id,
			Weight: weight,
			Audio: AudioConfig{
				Device:          Device{LAP: 1, UAP: 2},
				PacketType:      PacketType(pt),
				FramesPerPacket: frames,
				SlotBudget:      time.Minute,
			},
		}
		if rate != 0 {
			cfg.Audio.SBC = SBCConfig{SampleRateHz: rate, Blocks: 4, Subbands: 4, Bitpool: 31}
		}
		s, err := sm.Admit(cfg)
		if err != nil {
			// Rejections are legitimate — a lone session can demand more
			// than one worker sustains — but they must be typed errors,
			// never panics, and must leave the manager reusable.
			if _, err2 := sm.Admit(SessionConfig{ID: "probe", Audio: lightAudio(7)}); err2 != nil &&
				!errors.Is(err2, ErrAdmissionRejected) {
				t.Fatalf("manager unusable after rejecting %q: %v", id, err2)
			}
			return
		}
		if id == "" {
			t.Fatal("empty session ID admitted")
		}
		if math.IsNaN(weight) || math.IsInf(weight, 0) || weight < 0 {
			t.Fatalf("unusable weight %v admitted", weight)
		}
		if _, err := sm.Admit(cfg); err == nil {
			t.Fatal("duplicate ID admitted")
		}
		if rep := s.Report(); rep.ID != id || rep.Weight <= 0 {
			t.Fatalf("session report %+v inconsistent with admission", rep)
		}
		if !sm.Evict(id) {
			t.Fatal("evicting an admitted session failed")
		}
	})
}
