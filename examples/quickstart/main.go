// Quickstart: synthesize one iBeacon advertisement as a WiFi frame and
// verify it decodes on a simulated, unmodified Bluetooth receiver.
package main

import (
	"fmt"
	"log"

	"bluefi"
)

func main() {
	// A synthesizer targets one chip and one WiFi channel. The RTL8811AU
	// model uses Realtek's fixed scrambler seed (71), so the PSDU below
	// is exactly what the paper's patched driver would transmit.
	syn, err := bluefi.New(bluefi.Options{Chip: bluefi.RTL8811AU})
	if err != nil {
		log.Fatal(err)
	}

	// Build a standard iBeacon payload...
	b := bluefi.IBeacon{Major: 1, Minor: 42, MeasuredPower: -59}
	copy(b.UUID[:], []byte("bluefi-over-wifi"))

	// ...and synthesize it for BLE advertising channel 38 (2426 MHz),
	// which WiFi channel 3 carries with the most pilot clearance.
	pkt, err := syn.Beacon(b.ADStructures(), [6]byte{0xB1, 0x0E, 0xF1, 0, 0, 1}, 38)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d-byte PSDU: transmit at MCS %d, short GI, WiFi channel %d\n",
		len(pkt.PSDU), pkt.MCS, pkt.WiFiChannel)
	fmt.Printf("in-band waveform fidelity: %.3f rad phase RMSE, %.0f µs airtime\n",
		pkt.Fidelity, pkt.AirtimeSeconds*1e6)

	// On hardware, pkt.PSDU now goes to the WiFi driver. Here, run the
	// simulated radio link instead: path loss, noise, and an unmodified
	// Bluetooth receiver (a Pixel phone profile) 1.5 m away.
	decoded := 0
	var rssi float64
	for seed := int64(1); seed <= 20; seed++ {
		rep, err := syn.Simulate(pkt, bluefi.SimulationParams{DistanceM: 1.5, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		if rep.Decoded {
			decoded++
			rssi = rep.RSSIdBm
		}
	}
	fmt.Printf("simulated Pixel at 1.5 m decoded %d/20 beacons, RSSI ≈ %.0f dBm\n", decoded, rssi)
}
