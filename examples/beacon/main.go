// Beacon: turn a plain WiFi access point into a multi-format Bluetooth
// beacon — the paper's headline application (§1: "every AP can also
// function as a Bluetooth device, such as a Bluetooth beacon").
//
// The example walks the frequency plan for all three BLE advertising
// channels, synthesizes iBeacon, Eddystone-UID and Eddystone-URL frames
// on the channels its WiFi channel covers, and measures reception across
// the paper's three phone profiles at the paper's three distances.
package main

import (
	"fmt"
	"log"

	"bluefi"
)

func main() {
	// Advertising channels live at 2402/2426/2480 MHz. A single 20 MHz
	// WiFi channel cannot cover all three — print what the plan says.
	fmt.Println("frequency plan for the three advertising channels:")
	for _, f := range []float64{2402, 2426, 2480} {
		plans := bluefi.Plan(f)
		if len(plans) == 0 {
			fmt.Printf("  %4.0f MHz: no 2.4 GHz WiFi channel covers it\n", f)
			continue
		}
		best := plans[0]
		fmt.Printf("  %4.0f MHz: best WiFi channel %d (pilot %.2f MHz away; %d candidates)\n",
			f, best.WiFiChannel, best.PilotDistanceMHz, len(plans))
	}
	fmt.Println("\nan AP on WiFi channel 3 advertises on BLE channel 38, as in the paper;")
	fmt.Println("receivers scan all three channels, so one is sufficient (§2.1.1)")

	syn, err := bluefi.New(bluefi.Options{Chip: bluefi.AR9331, WiFiChannel: 3})
	if err != nil {
		log.Fatal(err)
	}
	addr := [6]byte{0xB1, 0x0E, 0xF1, 0xAA, 0xBB, 0xCC}

	// Three beacon formats through the same pipeline.
	ib := bluefi.IBeacon{Major: 100, Minor: 7, MeasuredPower: -59}
	copy(ib.UUID[:], []byte("museum-exhibit-A"))
	uid := bluefi.EddystoneUID{TxPower: -10}
	copy(uid.Namespace[:], []byte("bluefi-ns!"))
	urlAD, err := bluefi.EddystoneURL{TxPower: -20, Scheme: 3, URL: "example.com"}.ADStructures()
	if err != nil {
		log.Fatal(err)
	}
	payloads := []struct {
		name string
		ad   []byte
	}{
		{"iBeacon", ib.ADStructures()},
		{"Eddystone-UID", uid.ADStructures()},
		{"Eddystone-URL", urlAD},
	}

	for _, p := range payloads {
		pkt, err := syn.Beacon(p.ad, addr, 38)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d-byte AD → %d-byte PSDU, %.0f µs airtime\n",
			p.name, len(p.ad), len(pkt.PSDU), pkt.AirtimeSeconds*1e6)
		for _, rx := range []struct {
			who  string
			dist float64
		}{
			{"Pixel", 0.2}, {"Pixel", 1.5}, {"Pixel", 4.5},
			{"S6", 1.5}, {"iPhone", 1.5},
		} {
			got, tries := 0, 10
			var rssi float64
			for seed := int64(1); seed <= int64(tries); seed++ {
				rep, err := syn.Simulate(pkt, bluefi.SimulationParams{
					Receiver: rx.who, DistanceM: rx.dist, Seed: seed,
				})
				if err != nil {
					log.Fatal(err)
				}
				if rep.Decoded {
					got++
					rssi = rep.RSSIdBm
				}
			}
			fmt.Printf("  %-7s @ %.1f m: %2d/%d received", rx.who, rx.dist, got, tries)
			if got > 0 {
				fmt.Printf("  RSSI ≈ %.0f dBm", rssi)
			}
			fmt.Println()
		}
	}
}
