// Impairments: walk the Fig. 8 ablation — each WiFi-hardware impairment
// applied cumulatively to an ideal Bluetooth waveform, measuring the RSSI
// and decodability cost of every transmit-chain block the BlueFi pipeline
// has to reverse (§2.4–2.8, §4.6).
package main

import (
	"fmt"
	"log"

	"bluefi/internal/beacon"
	"bluefi/internal/bt"
	"bluefi/internal/btrx"
	"bluefi/internal/channel"
	"bluefi/internal/core"
	"bluefi/internal/gfsk"
)

func main() {
	// Build the evaluation beacon.
	b := beacon.IBeacon{Major: 1, Minor: 1, MeasuredPower: -59}
	adv, err := beacon.Advertisement([6]byte{1, 2, 3, 4, 5, 6}, b.ADStructures())
	if err != nil {
		log.Fatal(err)
	}
	air, err := adv.AirBits(38)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.GFSK = gfsk.BLEConfig()
	syn, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	waves, err := syn.Ablation(air, 2426)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := core.PlanForChannel(2426, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cumulative impairments of the 802.11n transmit chain (Fig. 8):")
	fmt.Println("  stage         what the hardware adds                    RSSI    decoded")
	notes := map[core.Stage]string{
		core.StageBaseline:  "ideal GFSK, as a Bluetooth radio sends it",
		core.StageCP:        "cyclic prefix + OFDM windowing (§2.4)",
		core.StageQAM:       "64-QAM constellation quantization (§2.5)",
		core.StagePilotNull: "pilot tones and null subcarriers (§2.6)",
		core.StageFEC:       "convolutional-code inversion flips (§2.7)",
		core.StageHeader:    "preamble + SERVICE/pad pinning (§2.8)",
	}
	for _, w := range waves {
		rcv, err := btrx.NewReceiver(btrx.Pixel, plan.OffsetHz, bt.Device{})
		if err != nil {
			log.Fatal(err)
		}
		got, rssiSum, n := 0, 0.0, 8
		for seed := int64(1); seed <= int64(n); seed++ {
			ch := channel.Default(18, 1.5)
			ch.Seed = seed
			rx, err := ch.Apply(w.IQ)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := rcv.ReceiveBLE(rx, 38)
			if err != nil {
				log.Fatal(err)
			}
			if rep.Detected {
				rssiSum += rep.RSSIdBm
				if rep.Result.OK {
					got++
				}
			}
		}
		fmt.Printf("  %-12s  %-42s %6.1f dBm  %d/%d\n",
			w.Stage, notes[w.Stage], rssiSum/float64(n), got, n)
	}
	fmt.Println("\neach stage sheds in-band energy and decodability; frequency planning,")
	fmt.Println("weighted FEC inversion and pilot pre-compensation claw most of it back")
	fmt.Println("in the full pipeline (the +Header row IS the shipping synthesizer)")
}
