// Audio: stream real-time A2DP audio over BlueFi (paper §4.7) — the
// pipeline the paper demonstrated with Sony SBH20 headphones: PCM is
// SBC-encoded, wrapped in AVDTP/L2CAP, scheduled onto Bluetooth time
// slots along the AFH-restricted hop sequence inside one WiFi channel,
// and each baseband packet is synthesized as a WiFi frame stamped with
// the slot clock that whitens it.
//
// The example streams a two-tone test signal with short DM3 packets (the
// §4.7 "shorter packets" operating point that keeps PER workable),
// measures PER with an FTS4BT-class sniffer, and reports delivery.
package main

import (
	"fmt"
	"log"
	"math"

	"bluefi"
)

func main() {
	syn, err := bluefi.New(bluefi.Options{Chip: bluefi.RTL8811AU, Mode: bluefi.RealTime})
	if err != nil {
		log.Fatal(err)
	}
	dev := bluefi.Device{LAP: 0x123456, UAP: 0x9A}
	stream, err := syn.NewAudioStream(bluefi.AudioConfig{
		Device:          dev,
		PacketType:      bluefi.DM3, // short on air with a single compact frame
		BestChannels:    1,          // §4.7: "PER can be drastically decreased by using fewer channels"
		SBC:             bluefi.SBCConfig{SampleRateHz: 16000, Blocks: 4, Subbands: 4, Bitpool: 8},
		FramesPerPacket: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A2DP/SBC stream: %d channel(s), %d samples per media packet\n",
		stream.Channels(), stream.SamplesPerSend())

	const mediaPackets = 30
	sent, received := 0, 0
	deliveredMedia := 0
	channelUse := map[int]int{}
	sampleClock := 0
	for p := 0; p < mediaPackets; p++ {
		// Generate the next slice of a 440 Hz + 1.2 kHz test tone.
		pcm := make([][]float64, stream.Channels())
		for ch := range pcm {
			pcm[ch] = make([]float64, stream.SamplesPerSend())
			for i := range pcm[ch] {
				tt := float64(sampleClock + i)
				pcm[ch][i] = 9000*math.Sin(2*math.Pi*440/16000*tt) + 4000*math.Sin(2*math.Pi*1200/16000*tt)
			}
		}
		sampleClock += stream.SamplesPerSend()

		txs, err := stream.Send(pcm)
		if err != nil {
			log.Fatal(err)
		}
		allOK := true
		for _, tx := range txs {
			sent++
			channelUse[tx.BTChannel]++
			rep, err := syn.SimulateBR(tx.Packet, dev, tx.Clock, bluefi.SimulationParams{
				Receiver: "FTS4BT", DistanceM: 1.5, Seed: int64(sent),
			})
			if err != nil {
				log.Fatal(err)
			}
			if rep.Decoded {
				received++
			} else {
				allOK = false
			}
		}
		if allOK {
			deliveredMedia++
		}
	}
	fmt.Printf("\nstreamed %d media packets as %d baseband packets over channels %v\n",
		mediaPackets, sent, keys(channelUse))
	fmt.Printf("baseband PER: %.0f%%   media packets fully delivered: %d/%d\n",
		100*float64(sent-received)/float64(sent), deliveredMedia, mediaPackets)
	fmt.Println("\n(the paper streams 5-slot packets to real headphones at 23% PER; this")
	fmt.Println(" simulation uses §4.7's own fallbacks — short packets on the best channel —")
	fmt.Println(" plus rehearsal-gated slots, an extension where the synthesizer re-slots")
	fmt.Println(" packets it predicts will fail; EXPERIMENTS.md quantifies the remaining gap)")
}

func keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
