package bluefi_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"bluefi"
)

// mixedJobs is a batch exercising all three job kinds across channels.
func mixedJobs() []bluefi.BatchJob {
	ib := bluefi.IBeacon{Major: 7, Minor: 9}
	eddy := bluefi.EddystoneUID{}
	addr := [6]byte{0xC0, 1, 2, 3, 4, 5}
	raw := make([]byte, 366)
	for i := range raw {
		raw[i] = byte(i>>2) & 1
	}
	rawB := make([]byte, 366)
	for i := range rawB {
		rawB[i] = byte(i>>3) & 1
	}
	dev := bluefi.Device{LAP: 0x123456, UAP: 0x9A}
	return []bluefi.BatchJob{
		{Beacon: &bluefi.BeaconJob{ADStructures: ib.ADStructures(), Addr: addr, BLEChannel: 38}},
		{Beacon: &bluefi.BeaconJob{ADStructures: eddy.ADStructures(), Addr: addr, BLEChannel: 38}},
		{BR: &bluefi.BRJob{Device: dev, Packet: &bluefi.BasebandPacket{Type: bluefi.DM1, LTAddr: 1, Payload: []byte("pool-br-1")}, BTChannel: 24}},
		{BR: &bluefi.BRJob{Device: dev, Packet: &bluefi.BasebandPacket{Type: bluefi.DH1, LTAddr: 2, SEQN: 1, Payload: []byte("pool-br-2"), Clock: 4}, BTChannel: 20}},
		{Raw: &bluefi.RawGFSKJob{AirBits: raw, FreqMHz: 2426, BLE: false}},
		{Raw: &bluefi.RawGFSKJob{AirBits: rawB, FreqMHz: 2426, BLE: true}},
	}
}

// TestPoolConcurrentStress hammers one Pool from many goroutines with
// mixed Beacon/BRPacket/RawGFSK batches and checks every result against
// a serial single-Synthesizer reference: concurrent workers must never
// cross-talk (same job → same PSDU, no matter what else is in flight).
func TestPoolConcurrentStress(t *testing.T) {
	opts := bluefi.Options{Chip: bluefi.RTL8811AU, Mode: bluefi.RealTime}
	jobs := mixedJobs()
	goroutines, rounds := 3, 2
	if testing.Short() {
		jobs = jobs[:4]
		goroutines, rounds = 2, 1
	}

	ref, err := bluefi.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(jobs))
	for i, job := range jobs {
		res := serialJob(ref, job)
		if res.Err != nil {
			t.Fatalf("serial reference job %d: %v", i, res.Err)
		}
		want[i] = res.Packet.PSDU
	}

	pool, err := bluefi.NewPool(opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Rotate the batch per goroutine so workers interleave
			// different job kinds at the same time.
			batch := make([]bluefi.BatchJob, len(jobs))
			idx := make([]int, len(jobs))
			for i := range jobs {
				j := (i + g) % len(jobs)
				batch[i], idx[i] = jobs[j], j
			}
			for r := 0; r < rounds; r++ {
				results := pool.SynthesizeBatch(batch)
				for i, res := range results {
					if res.Err != nil {
						errs <- fmt.Errorf("goroutine %d round %d job %d: %v", g, r, idx[i], res.Err)
						return
					}
					if !bytes.Equal(res.Packet.PSDU, want[idx[i]]) {
						errs <- fmt.Errorf("goroutine %d round %d job %d: PSDU differs from serial reference", g, r, idx[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// serialJob runs one BatchJob on a plain Synthesizer.
func serialJob(s *bluefi.Synthesizer, job bluefi.BatchJob) bluefi.BatchResult {
	switch {
	case job.Beacon != nil:
		pkt, err := s.Beacon(job.Beacon.ADStructures, job.Beacon.Addr, job.Beacon.BLEChannel)
		return bluefi.BatchResult{Packet: pkt, Err: err}
	case job.BR != nil:
		pkt, err := s.BRPacket(job.BR.Device, job.BR.Packet, job.BR.BTChannel)
		return bluefi.BatchResult{Packet: pkt, Err: err}
	case job.Raw != nil:
		pkt, err := s.RawGFSK(job.Raw.AirBits, job.Raw.FreqMHz, job.Raw.BLE)
		return bluefi.BatchResult{Packet: pkt, Err: err}
	}
	return bluefi.BatchResult{Err: fmt.Errorf("empty job")}
}

// TestPoolBatchOrderAndErrors: results land at their job's index and a
// failing job does not poison its neighbours.
func TestPoolBatchOrderAndErrors(t *testing.T) {
	pool, err := bluefi.NewPool(bluefi.Options{Mode: bluefi.RealTime}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ib := bluefi.IBeacon{Major: 1}
	addr := [6]byte{1, 2, 3, 4, 5, 6}
	jobs := []bluefi.BatchJob{
		{Beacon: &bluefi.BeaconJob{ADStructures: ib.ADStructures(), Addr: addr, BLEChannel: 38}},
		{}, // invalid: no job kind set
		{Beacon: &bluefi.BeaconJob{ADStructures: ib.ADStructures(), Addr: addr, BLEChannel: 99}}, // invalid channel
		{Beacon: &bluefi.BeaconJob{ADStructures: ib.ADStructures(), Addr: addr, BLEChannel: 38}},
	}
	results := pool.SynthesizeBatch(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("valid jobs failed: %v, %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil {
		t.Error("empty job did not error")
	}
	if results[2].Err == nil {
		t.Error("invalid BLE channel did not error")
	}
	if !bytes.Equal(results[0].Packet.PSDU, results[3].Packet.PSDU) {
		t.Error("identical jobs at indices 0 and 3 produced different PSDUs")
	}
}

// TestPoolBeaconBatch checks the beacon-fleet convenience wrapper.
func TestPoolBeaconBatch(t *testing.T) {
	pool, err := bluefi.NewPool(bluefi.Options{Mode: bluefi.RealTime}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", pool.Workers())
	}

	jobs := make([]bluefi.BeaconJob, 3)
	for i := range jobs {
		ib := bluefi.IBeacon{Major: uint16(i + 1)}
		// Channel 38 (2426 MHz) is the one advertising channel inside
		// WiFi channel 3.
		jobs[i] = bluefi.BeaconJob{ADStructures: ib.ADStructures(), Addr: [6]byte{9, 8, 7, 6, 5, byte(i)}, BLEChannel: 38}
	}
	results := pool.BeaconBatch(jobs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("beacon %d: %v", i, res.Err)
		}
		if len(res.Packet.PSDU) == 0 {
			t.Fatalf("beacon %d: empty PSDU", i)
		}
	}
	// Distinct majors and channels must yield distinct frames.
	if bytes.Equal(results[0].Packet.PSDU, results[1].Packet.PSDU) {
		t.Error("distinct beacons produced identical PSDUs")
	}
}

// TestPoolAudioStream: a pool-backed stream must produce exactly the
// transmissions of a single-synthesizer stream — concurrent segment
// synthesis may not change the audio path's output.
func TestPoolAudioStream(t *testing.T) {
	cfg := bluefi.AudioConfig{
		Device:          bluefi.Device{LAP: 3, UAP: 4},
		PacketType:      bluefi.DM1,
		SBC:             bluefi.SBCConfig{SampleRateHz: 16000, Blocks: 4, Subbands: 4, Bitpool: 8},
		FramesPerPacket: 1,
	}
	syn, err := bluefi.New(bluefi.Options{Mode: bluefi.RealTime})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := syn.NewAudioStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := bluefi.NewPool(bluefi.Options{Mode: bluefi.RealTime}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pooled, err := pool.NewAudioStream(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for send := 0; send < 2; send++ {
		wantTxs, err := serial.Send(testTone(serial, send*serial.SamplesPerSend()))
		if err != nil {
			t.Fatal(err)
		}
		gotTxs, err := pooled.Send(testTone(pooled, send*pooled.SamplesPerSend()))
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTxs) != len(wantTxs) {
			t.Fatalf("send %d: %d segments from pool stream, %d from serial", send, len(gotTxs), len(wantTxs))
		}
		for i := range wantTxs {
			if gotTxs[i].Clock != wantTxs[i].Clock || gotTxs[i].BTChannel != wantTxs[i].BTChannel {
				t.Errorf("send %d segment %d: slot (%d, ch %d) vs serial (%d, ch %d)",
					send, i, gotTxs[i].Clock, gotTxs[i].BTChannel, wantTxs[i].Clock, wantTxs[i].BTChannel)
			}
			if !bytes.Equal(gotTxs[i].Packet.PSDU, wantTxs[i].Packet.PSDU) {
				t.Errorf("send %d segment %d: pooled PSDU differs from serial", send, i)
			}
		}
	}
}
