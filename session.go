package bluefi

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bluefi/internal/a2dp"
	"bluefi/internal/obs"
	"bluefi/internal/obs/sketch"
	"bluefi/internal/obs/slo"
)

// Multi-session A2DP (DESIGN.md §14): the SessionManager multiplexes N
// concurrent audio streams over one shared Pool. Three mechanisms keep
// the fleet inside its real-time envelope where N isolated streams
// would collapse:
//
//   - Admission control: before a session joins, its steady-state
//     segment arrivals — together with every live session's and the
//     pool's current backlog — are replayed through the deterministic
//     EDF slot-time simulator (internal/a2dp), with the per-segment
//     service time estimated from the pool's measured job-latency
//     histogram. Projected deadline-miss ratio over budget ⇒
//     ErrAdmissionRejected (or parked on the bounded pending queue).
//   - A global shedding budget: each session's Governor requests every
//     Shedding drop from one fleet-wide budget that enforces the global
//     ship floor and allocates drops by weighted max-min fairness, so a
//     struggling session borrows headroom without starving anyone below
//     their weighted share.
//   - EDF job scheduling: with Options.EDF the pool runs whichever
//     session's segment is closest to its 625 µs slot, not whichever
//     was submitted first.
//
// The manager is goroutine-free: admission, promotion and eviction all
// run on the caller, so it adds nothing for the leak checker to track.

// ErrAdmissionRejected is returned by SessionManager.Admit (and wraps
// the detail of why) when the projected deadline-miss ratio of the
// fleet plus the candidate exceeds the configured budget.
var ErrAdmissionRejected = errors.New("bluefi: session admission rejected")

// SessionManagerConfig tunes the multi-session coordination plane. The
// zero value is usable; every knob has a documented default.
type SessionManagerConfig struct {
	// GlobalShipFloor is the fleet-wide minimum shipped fraction the
	// shedding budget enforces (default 0.8 — the single-stream chaos
	// bound, now shared instead of per-stream).
	GlobalShipFloor float64
	// MissBudget is the maximum projected deadline-miss ratio admission
	// tolerates (default 0.05).
	MissBudget float64
	// HorizonPackets is how many media packets per session the admission
	// projection replays (default 16).
	HorizonPackets int
	// ServiceSlots overrides the per-segment service-time estimate in
	// 625 µs slots (0 = live estimate from the pool's job-latency
	// histogram, falling back to 1 slot before the first job). Evals pin
	// it so the capacity knee is a property of the workload, not the
	// host.
	ServiceSlots float64
	// SlackSlots is the admission projection's per-deadline queueing
	// allowance (0 = default 4; negative = none).
	SlackSlots float64
	// AdmissionQueue bounds how many rejected sessions Enqueue may park
	// for promotion when an eviction frees headroom (default 0 = no
	// queue; Enqueue then behaves like Admit).
	AdmissionQueue int
	// Degrade is the policy template applied to sessions whose
	// AudioConfig.Degrade is nil. Coordinator and SessionID are
	// overwritten per session either way: every managed stream is
	// coupled to the fleet budget.
	Degrade DegradePolicy
}

func (c SessionManagerConfig) withDefaults() SessionManagerConfig {
	if c.GlobalShipFloor <= 0 || c.GlobalShipFloor >= 1 {
		c.GlobalShipFloor = 0.8
	}
	if c.MissBudget <= 0 {
		c.MissBudget = 0.05
	}
	if c.HorizonPackets <= 0 {
		c.HorizonPackets = 16
	}
	if c.AdmissionQueue < 0 {
		c.AdmissionQueue = 0
	}
	return c
}

// SessionConfig describes one candidate A2DP session.
type SessionConfig struct {
	// ID names the session; unique among live and pending sessions.
	ID string
	// Weight is the session's share of the fleet shedding budget under
	// weighted max-min fairness (≤0 = 1).
	Weight float64
	// Audio is the stream configuration; its Degrade field (or the
	// manager's template) is coupled to the fleet budget.
	Audio AudioConfig
}

// smMetrics holds the manager's telemetry handles; nil disables them at
// one branch per record.
type smMetrics struct {
	reg *obs.Registry

	admitted *obs.Counter
	rejected *obs.Counter
	queued   *obs.Counter
	evicted  *obs.Counter
	pending  *obs.Gauge
	missGate *obs.Gauge

	active   *obs.Gauge
	shipped  *obs.Counter
	dropped  *obs.Counter
	segments *obs.Counter
	misses   *obs.Counter
	slack    *obs.Histogram
}

func newSMMetrics(r *obs.Registry) *smMetrics {
	if r == nil {
		return nil
	}
	return &smMetrics{
		reg: r,
		admitted: r.Counter("bluefi_a2dp_admission_admitted_total",
			"sessions admitted by the headroom projection"),
		rejected: r.Counter("bluefi_a2dp_admission_rejected_total",
			"session admissions refused (projected deadline-miss ratio over budget)"),
		queued: r.Counter("bluefi_a2dp_admission_queued_total",
			"rejected sessions parked on the pending queue"),
		evicted: r.Counter("bluefi_a2dp_admission_evicted_total",
			"sessions evicted from the manager"),
		pending: r.Gauge("bluefi_a2dp_admission_pending",
			"sessions parked awaiting promotion"),
		missGate: r.Gauge("bluefi_a2dp_admission_miss_permille",
			"projected deadline-miss ratio of the last admission decision, in permille"),
		active: r.Gauge("bluefi_a2dp_session_active",
			"live sessions multiplexed over the shared pool"),
		shipped: r.Counter("bluefi_a2dp_session_shipped_total",
			"media packets shipped across all managed sessions"),
		dropped: r.Counter("bluefi_a2dp_session_dropped_total",
			"media packets shed or lost across all managed sessions"),
		segments: r.Counter("bluefi_a2dp_session_segments_total",
			"segments synthesized across all managed sessions"),
		misses: r.Counter("bluefi_a2dp_session_deadline_miss_total",
			"segments that overran their slot budget across all managed sessions"),
		slack: r.Histogram("bluefi_a2dp_session_slack_seconds",
			"per-segment deadline slack across all managed sessions",
			obs.LinearBuckets(-10e-3, 1.25e-3, 17)),
	}
}

func (m *smMetrics) event(kind string, attrs ...obs.Label) {
	if m == nil {
		return
	}
	m.reg.Event(kind, attrs...)
}

// SessionManager multiplexes A2DP sessions over one shared Pool. Safe
// for concurrent use. Build one with Pool.NewSessionManager.
type SessionManager struct {
	pool   *Pool
	cfg    SessionManagerConfig
	budget *a2dp.ShedBudget
	met    *smMetrics

	mu       sync.Mutex
	sessions map[string]*Session // guarded by mu
	order    []string            // guarded by mu; admission order
	pendingQ []*PendingSession   // guarded by mu; FIFO
	seq      uint64              // guarded by mu; admissions ever, for phase stagger
	lastProj a2dp.Projection     // guarded by mu
}

// NewSessionManager builds a session coordination plane over the pool.
// The manager shares the pool's telemetry registry; pair it with
// Options.EDF so admitted sessions also get deadline-ordered service.
func (p *Pool) NewSessionManager(cfg SessionManagerConfig) (*SessionManager, error) {
	if p.isClosed() {
		return nil, ErrPoolClosed
	}
	cfg = cfg.withDefaults()
	reg := p.opts.Telemetry
	return &SessionManager{
		pool: p,
		cfg:  cfg,
		budget: a2dp.NewShedBudget(a2dp.ShedBudgetConfig{
			GlobalShipFloor: cfg.GlobalShipFloor,
			Telemetry:       reg,
		}),
		met:      newSMMetrics(reg),
		sessions: make(map[string]*Session),
	}, nil
}

// demandFor derives the session's steady-state slot-time load from its
// audio configuration, mirroring NewAudioStream's defaulting so the
// projection prices exactly the stream that would be built.
func demandFor(cfg SessionConfig, phaseSeq uint64) (a2dp.SessionDemand, error) {
	ac := cfg.Audio
	if ac.PacketType == 0 {
		ac.PacketType = DM5
	}
	if ac.SBC == (SBCConfig{}) {
		ac.SBC = SBCConfig{SampleRateHz: 44100, Blocks: 16, Stereo: true, Subbands: 8, Bitpool: 35}
	}
	pt, err := ac.PacketType.inner()
	if err != nil {
		return a2dp.SessionDemand{}, err
	}
	sbcCfg, err := ac.SBC.inner()
	if err != nil {
		return a2dp.SessionDemand{}, err
	}
	frames := ac.FramesPerPacket
	if frames <= 0 {
		frames = a2dp.FramesPerPacket(pt, sbcCfg)
	}
	if frames < 1 {
		frames = 1
	}
	// One Send's wire bytes: L2CAP header + AVDTP media header + frames.
	wire := 4 + a2dp.MediaHeaderLen + frames*sbcCfg.FrameBytes()
	segs := (wire + pt.MaxPayload() - 1) / pt.MaxPayload()
	segSlots := pt.Slots()
	if segSlots%2 == 1 {
		segSlots++
	}
	samples := frames * sbcCfg.SamplesPerFrame()
	periodSlots := float64(samples) / float64(ac.SBC.SampleRateHz) / 625e-6
	weight := cfg.Weight
	if weight <= 0 {
		weight = 1
	}
	return a2dp.SessionDemand{
		ID:                cfg.ID,
		Weight:            weight,
		SegmentsPerPacket: segs,
		SegmentSlots:      segSlots,
		PacketPeriodSlots: periodSlots,
		// Stagger arrival phases so same-config sessions do not all
		// burst on slot 0 of the projection.
		PhaseSlots: periodSlots * float64(phaseSeq%4) / 4,
	}, nil
}

// serviceSlotsLocked is the admission projection's per-segment service
// estimate: the configured override, else the pool's measured mean job
// latency in slots, else 1.
func (m *SessionManager) serviceSlotsLocked() float64 {
	if m.cfg.ServiceSlots > 0 {
		return m.cfg.ServiceSlots
	}
	if mean, n := m.pool.JobLatency(); n > 0 {
		return mean / 625e-6
	}
	return 1
}

// Admit projects pool headroom for the live fleet plus the candidate
// and either opens the session's stream or refuses with an error
// wrapping ErrAdmissionRejected. It never queues; see Enqueue.
func (m *SessionManager) Admit(cfg SessionConfig) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.admitLocked(cfg)
}

func (m *SessionManager) admitLocked(cfg SessionConfig) (*Session, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("bluefi: session ID must be non-empty")
	}
	if _, ok := m.sessions[cfg.ID]; ok {
		return nil, fmt.Errorf("bluefi: session %q already admitted", cfg.ID)
	}
	for _, p := range m.pendingQ {
		if p.cfg.ID == cfg.ID {
			return nil, fmt.Errorf("bluefi: session %q already pending", cfg.ID)
		}
	}
	if w := cfg.Weight; math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return nil, fmt.Errorf("bluefi: session %q weight %v is not a usable fairness weight", cfg.ID, w)
	}

	demand, err := demandFor(cfg, m.seq)
	if err != nil {
		return nil, err
	}
	demands := make([]a2dp.SessionDemand, 0, len(m.order)+1)
	for _, id := range m.order {
		demands = append(demands, m.sessions[id].demand)
	}
	demands = append(demands, demand)
	proj := a2dp.ProjectAdmission(demands, a2dp.AdmissionConfig{
		Workers:        m.pool.Workers(),
		QueueDepth:     m.pool.QueueDepth(),
		ServiceSlots:   m.serviceSlotsLocked(),
		SlackSlots:     m.cfg.SlackSlots,
		HorizonPackets: m.cfg.HorizonPackets,
	})
	m.lastProj = proj
	if m.met != nil {
		m.met.missGate.Set(int64(proj.MissRatio * 1000))
	}
	if proj.MissRatio > m.cfg.MissBudget {
		if m.met != nil {
			m.met.rejected.Inc()
		}
		m.met.event("session.reject",
			obs.L("session", cfg.ID),
			obs.L("sessions", fmt.Sprintf("%d", proj.Sessions)),
			obs.L("missRatio", fmt.Sprintf("%.4f", proj.MissRatio)))
		return nil, fmt.Errorf("%w: %q: projected deadline-miss ratio %.4f exceeds budget %.4f at %d sessions (utilization %.2f)",
			ErrAdmissionRejected, cfg.ID, proj.MissRatio, m.cfg.MissBudget, proj.Sessions, proj.Utilization)
	}

	// Couple the stream's governor to the fleet budget: the per-session
	// template (or the manager's) with Coordinator/SessionID overridden.
	ac := cfg.Audio
	dp := m.cfg.Degrade
	if ac.Degrade != nil {
		dp = *ac.Degrade
	}
	dp.Coordinator = m.budget
	dp.SessionID = cfg.ID
	ac.Degrade = &dp
	if err := m.budget.Register(cfg.ID, demand.Weight); err != nil {
		return nil, err
	}
	stream, err := m.pool.NewAudioStream(ac)
	if err != nil {
		m.budget.Unregister(cfg.ID)
		return nil, err
	}
	s := &Session{
		id:     cfg.ID,
		weight: demand.Weight,
		m:      m,
		stream: stream,
		demand: demand,
		slackQ: sketch.NewQuantile(0.01, 128),
	}
	stream.onSlack = s.noteSlack
	m.sessions[cfg.ID] = s
	m.order = append(m.order, cfg.ID)
	m.seq++
	if m.met != nil {
		m.met.admitted.Inc()
		m.met.active.Set(int64(len(m.sessions)))
	}
	m.met.event("session.admit",
		obs.L("session", cfg.ID),
		obs.L("sessions", fmt.Sprintf("%d", len(m.sessions))))
	return s, nil
}

// Enqueue is Admit with a waiting room: an immediately admittable
// session is returned ready; a rejected one is parked on the bounded
// pending queue (FIFO) for promotion when an eviction frees headroom.
// With no queue configured — or a full one — the rejection propagates.
func (m *SessionManager) Enqueue(cfg SessionConfig) (*PendingSession, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, err := m.admitLocked(cfg)
	if err == nil {
		p := &PendingSession{cfg: cfg, done: make(chan struct{})}
		p.deliver(s, nil)
		return p, nil
	}
	if !errors.Is(err, ErrAdmissionRejected) {
		return nil, err
	}
	if m.cfg.AdmissionQueue <= 0 || len(m.pendingQ) >= m.cfg.AdmissionQueue {
		return nil, err
	}
	p := &PendingSession{cfg: cfg, done: make(chan struct{})}
	m.pendingQ = append(m.pendingQ, p)
	if m.met != nil {
		m.met.queued.Inc()
		m.met.pending.Set(int64(len(m.pendingQ)))
	}
	return p, nil
}

// Evict removes a live session, returns whether it was present, and
// promotes pending sessions that now fit. The evicted Session's stream
// stays usable but is decoupled from the budget: it never sheds again.
func (m *SessionManager) Evict(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sessions[id]
	if s == nil {
		return false
	}
	delete(m.sessions, id)
	for i, o := range m.order {
		if o == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.budget.Unregister(id)
	s.evicted.Store(true)
	if m.met != nil {
		m.met.evicted.Inc()
		m.met.active.Set(int64(len(m.sessions)))
	}
	m.met.event("session.evict",
		obs.L("session", id),
		obs.L("sessions", fmt.Sprintf("%d", len(m.sessions))))
	m.promoteLocked()
	return true
}

// promoteLocked re-projects the queue head against the shrunken fleet
// and admits while there is headroom. A head that still does not fit
// keeps the queue blocked (FIFO — no starvation via queue-jumping); a
// head failing for a non-admission reason is delivered its error.
func (m *SessionManager) promoteLocked() {
	for len(m.pendingQ) > 0 {
		// Dequeue before re-projecting: the candidate must not trip its
		// own duplicate-pending check.
		p := m.pendingQ[0]
		m.pendingQ = m.pendingQ[1:]
		s, err := m.admitLocked(p.cfg)
		if err != nil && errors.Is(err, ErrAdmissionRejected) {
			m.pendingQ = append([]*PendingSession{p}, m.pendingQ...)
			break
		}
		p.deliver(s, err)
	}
	if m.met != nil {
		m.met.pending.Set(int64(len(m.pendingQ)))
	}
}

// Sessions returns a report per live session, in admission order.
func (m *SessionManager) Sessions() []SessionReport {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.order))
	for _, id := range m.order {
		ss = append(ss, m.sessions[id])
	}
	m.mu.Unlock()
	out := make([]SessionReport, len(ss))
	for i, s := range ss {
		out[i] = s.Report()
	}
	return out
}

// Pending returns how many sessions are parked awaiting promotion.
func (m *SessionManager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pendingQ)
}

// SessionManagerReport is the manager's point-in-time summary.
type SessionManagerReport struct {
	Sessions []SessionReport       `json:"sessions"`
	Pending  int                   `json:"pending"`
	LastProj a2dp.Projection       `json:"lastProjection"`
	Budget   a2dp.ShedBudgetReport `json:"budget"`
}

// Report returns the manager summary: per-session reports, the pending
// count, the last admission projection and the fleet budget state.
func (m *SessionManager) Report() SessionManagerReport {
	m.mu.Lock()
	pending := len(m.pendingQ)
	proj := m.lastProj
	m.mu.Unlock()
	return SessionManagerReport{
		Sessions: m.Sessions(),
		Pending:  pending,
		LastProj: proj,
		Budget:   m.budget.Report(),
	}
}

// SessionSLOSpecs declares the multi-session SLOs over the manager's
// cumulative counters — feed them to an slo.Engine the way the fleet
// layer's SLOSpecs are. Returns nil without telemetry.
func (m *SessionManager) SessionSLOSpecs() []slo.Spec {
	if m.met == nil {
		return nil
	}
	return []slo.Spec{
		{
			Name:        "a2dp_session_delivery",
			Description: "Fleet-wide shipped media-packet fraction stays above the global ship floor.",
			Objective:   m.cfg.GlobalShipFloor,
			Indicator: func() (float64, float64) {
				good := m.met.shipped.Value()
				return float64(good), float64(good + m.met.dropped.Value())
			},
		},
		{
			Name:        "a2dp_session_deadline",
			Description: "95% of synthesized segments make their slot budget.",
			Objective:   0.95,
			Indicator: func() (float64, float64) {
				total := m.met.segments.Value()
				return float64(total - m.met.misses.Value()), float64(total)
			},
		},
	}
}

// Session is one admitted A2DP stream under the manager. Safe for
// concurrent use with the other sessions; one session's Send calls are
// serial like AudioStream's.
type Session struct {
	id     string
	weight float64
	m      *SessionManager
	stream *AudioStream
	demand a2dp.SessionDemand

	shipped atomic.Uint64
	dropped atomic.Uint64
	evicted atomic.Bool

	slackMu  sync.Mutex
	segments uint64           // guarded by slackMu
	misses   uint64           // guarded by slackMu
	minSlack time.Duration    // guarded by slackMu; valid when segments > 0
	slackQ   *sketch.Quantile // positive slack quantiles
}

// ID returns the session's name.
func (s *Session) ID() string { return s.id }

// Stream exposes the underlying audio stream (codec geometry, health).
func (s *Session) Stream() *AudioStream { return s.stream }

// Send encodes and synthesizes one media packet (see AudioStream.Send)
// and keeps the manager's shipped/dropped accounting — a (nil, nil)
// return is a shed or fault-dropped packet.
func (s *Session) Send(pcm [][]float64) ([]*AudioTransmission, error) {
	out, err := s.stream.Send(pcm)
	met := s.m.met
	switch {
	case err != nil:
		// Hard failure: surfaced to the caller, not part of the
		// shed/ship budget arithmetic.
	case out == nil:
		s.dropped.Add(1)
		if met != nil {
			met.dropped.Inc()
		}
	default:
		s.shipped.Add(1)
		if met != nil {
			met.shipped.Inc()
		}
	}
	return out, err
}

// noteSlack is the stream's per-segment deadline-slack export hook;
// called concurrently from pool workers.
func (s *Session) noteSlack(slack time.Duration) {
	s.slackMu.Lock()
	if s.segments == 0 || slack < s.minSlack {
		s.minSlack = slack
	}
	s.segments++
	if slack < 0 {
		s.misses++
	}
	s.slackMu.Unlock()
	if slack > 0 {
		s.slackQ.Observe(slack.Seconds())
	}
	if met := s.m.met; met != nil {
		met.segments.Inc()
		if slack < 0 {
			met.misses.Inc()
		}
		met.slack.Observe(slack.Seconds())
	}
}

// SessionReport is one session's point-in-time summary.
type SessionReport struct {
	ID      string      `json:"id"`
	Weight  float64     `json:"weight"`
	State   HealthState `json:"state"`
	Evicted bool        `json:"evicted,omitempty"`
	// Shipped/Dropped count media packets; ShippedRatio is their ratio
	// (1 before any traffic).
	Shipped      uint64  `json:"shipped"`
	Dropped      uint64  `json:"dropped"`
	ShippedRatio float64 `json:"shippedRatio"`
	// Segments/DeadlineMisses count synthesized segments; the slack
	// fields summarize the per-segment deadline-slack export.
	Segments        uint64  `json:"segments"`
	DeadlineMisses  uint64  `json:"deadlineMisses"`
	MinSlackSeconds float64 `json:"minSlackSeconds"`
	P50SlackSeconds float64 `json:"p50SlackSeconds"`
	P99SlackSeconds float64 `json:"p99SlackSeconds"`
	// Governor is the stream's degradation summary.
	Governor DegradationReport `json:"governor"`
}

// Report returns the session's current summary.
func (s *Session) Report() SessionReport {
	rep := SessionReport{
		ID:      s.id,
		Weight:  s.weight,
		State:   s.stream.Health(),
		Evicted: s.evicted.Load(),
		Shipped: s.shipped.Load(),
		Dropped: s.dropped.Load(),
	}
	if total := rep.Shipped + rep.Dropped; total > 0 {
		rep.ShippedRatio = float64(rep.Shipped) / float64(total)
	} else {
		rep.ShippedRatio = 1
	}
	s.slackMu.Lock()
	rep.Segments = s.segments
	rep.DeadlineMisses = s.misses
	if s.segments > 0 {
		rep.MinSlackSeconds = s.minSlack.Seconds()
	}
	s.slackMu.Unlock()
	// P99 here is the tail 99% of segments beat (the 1st-percentile
	// positive slack); misses themselves show up in DeadlineMisses and
	// MinSlackSeconds.
	rep.P50SlackSeconds = s.slackQ.Value(0.50)
	rep.P99SlackSeconds = s.slackQ.Value(0.01)
	rep.Governor = s.stream.Report()
	return rep
}

// PendingSession is a session parked by Enqueue: it resolves to a live
// Session (or an error) when an eviction frees enough headroom.
type PendingSession struct {
	cfg  SessionConfig
	done chan struct{}

	mu    sync.Mutex
	s     *Session // guarded by mu until done closes
	err   error    // guarded by mu until done closes
	ready bool     // guarded by mu
}

// deliver resolves the pending session exactly once.
func (p *PendingSession) deliver(s *Session, err error) {
	p.mu.Lock()
	if p.ready {
		p.mu.Unlock()
		return
	}
	p.s, p.err, p.ready = s, err, true
	p.mu.Unlock()
	close(p.done)
}

// Done is closed when the session has been resolved either way.
func (p *PendingSession) Done() <-chan struct{} { return p.done }

// Session returns the resolved session, whether resolution happened,
// and the resolution error (nil session + nil error means still
// pending).
func (p *PendingSession) Session() (*Session, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.s, p.ready, p.err
}
