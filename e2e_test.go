package bluefi_test

// End-to-end conformance rig: every synthesis mode generated through
// the public bluefi API, pushed through the seeded channel model and
// decoded back through the internal/scan scanner. The contract
// (DESIGN.md §10):
//
//   - Rehearsal soundness: a packet whose synthesis-time rehearsal saw
//     zero mismatches MUST decode bit-identical on a clean channel. A
//     packet the rehearsal flagged (RehearsalMismatches > 0) may fail —
//     that is exactly what the flag predicts, and schedulers re-slot
//     such packets — but when it does decode it must be bit-identical.
//   - EDR boundary: the full COTS chain recovers the EDR access code
//     and header (detection) but not the DPSK payload, which does not
//     survive cyclic-prefix insertion; payload conformance runs on the
//     CP-bypass transport leg (§A.2 vendor recommendation).
//   - Under a seeded interferer storm the advertising PDR stays ≥80%
//     and every run with the same seeds is byte-identical.
//
// `make e2e` runs this file plus the scan package under -race.

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"bluefi"
	"bluefi/internal/bt"
	"bluefi/internal/channel"
	"bluefi/internal/dsp"
	"bluefi/internal/gfsk"
	"bluefi/internal/scan"
)

// e2eCapture pushes a synthesized packet through a seeded clean channel
// into a scanner capture.
func e2eCapture(t *testing.T, pkt *bluefi.Packet, kind scan.Kind, ch int, seed int64) scan.Capture {
	t.Helper()
	m := channel.Default(18, 1.5)
	m.Seed = seed
	iq, err := m.Apply(pkt.Waveform())
	if err != nil {
		t.Fatal(err)
	}
	return scan.Capture{Kind: kind, Channel: ch, OffsetHz: pkt.ChannelOffsetHz(), IQ: iq}
}

// TestGoldenRoundTrip closes the loop over the committed golden matrix:
// every vector synthesizes and, per the rehearsal-soundness contract,
// decodes back bit-identical through the scanner.
func TestGoldenRoundTrip(t *testing.T) {
	ib := bluefi.IBeacon{Major: 0xB1, Minor: 0xF1}
	wantAddr := [6]byte{0xBF, 0x01, 0x02, 0x03, 0x04, 0x05}
	wantData := ib.ADStructures()
	cleanDecodes := 0
	for _, v := range goldenCases(testing.Short()) {
		v := v
		t.Run(v.Chip+"/"+v.Mode+"/ble"+itoa(v.BLEChannel)+"-wifi"+itoa(v.WiFiChannel), func(t *testing.T) {
			pkt := goldenBeacon(t, v.Chip, v.Mode, v.BLEChannel, v.WiFiChannel)
			s := scan.NewScanner(scan.Config{Seed: 11})
			out := s.Ingest(e2eCapture(t, pkt, scan.KindBLEAdv, v.BLEChannel, 3))
			if out.Err != nil {
				t.Fatal(out.Err)
			}
			if pkt.RehearsalMismatches == 0 && !out.Decoded {
				t.Fatalf("rehearsal predicted success but the scanner failed: %+v", out)
			}
			if !out.Decoded {
				t.Logf("flagged at synthesis (%d mismatches) and did not decode — the contract allows this", pkt.RehearsalMismatches)
				return
			}
			cleanDecodes++
			if out.Adv == nil || out.Adv.AdvA != wantAddr || !bytes.Equal(out.Adv.Data, wantData) {
				t.Fatalf("decode is not bit-identical: %+v", out.Adv)
			}
		})
	}
	if cleanDecodes == 0 {
		t.Fatal("no golden vector decoded at all")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestE2ELoopbackModes covers the three synthesis modes end to end, all
// through the public API: BLE beacons in both synthesis modes, a BR
// baseband packet, and EDR (full-chain detection + CP-bypass payload).
func TestE2ELoopbackModes(t *testing.T) {
	t.Run("BLE", func(t *testing.T) {
		// Channel pairs whose goldens carry zero rehearsal mismatches in
		// both synthesis modes — these MUST decode bit-identical.
		for _, tc := range []struct {
			mode string
			ble  int
			wifi int
		}{
			{"Quality", 38, 4},
			{"RealTime", 39, 13},
		} {
			pkt := goldenBeacon(t, "AR9331", tc.mode, tc.ble, tc.wifi)
			if pkt.RehearsalMismatches > 0 {
				t.Fatalf("%s/%d-%d: golden pair regressed to %d rehearsal mismatches", tc.mode, tc.ble, tc.wifi, pkt.RehearsalMismatches)
			}
			s := scan.NewScanner(scan.Config{Seed: 21})
			out := s.Ingest(e2eCapture(t, pkt, scan.KindBLEAdv, tc.ble, 5))
			ib := bluefi.IBeacon{Major: 0xB1, Minor: 0xF1}
			if !out.Decoded || out.Adv == nil || !bytes.Equal(out.Adv.Data, ib.ADStructures()) {
				t.Fatalf("%s mode did not round-trip bit-identical: %+v", tc.mode, out)
			}
		}
	})

	t.Run("BR", func(t *testing.T) {
		syn, err := bluefi.New(bluefi.Options{Chip: bluefi.AR9331, Mode: bluefi.Quality, WiFiChannel: 3})
		if err != nil {
			t.Fatal(err)
		}
		dev := bluefi.Device{LAP: 0x123456, UAP: 0x9A}
		payload := []byte("bluefi e2e")
		decoded := 0
		for clk := uint32(0); clk < 24; clk += 4 {
			pkt, err := syn.BRPacket(dev, &bluefi.BasebandPacket{Type: bluefi.DM1, LTAddr: 1, Payload: payload, Clock: clk}, 24)
			if err != nil {
				t.Fatal(err)
			}
			s := scan.NewScanner(scan.Config{Seed: 31, Device: bt.Device(dev)})
			cap1 := e2eCapture(t, pkt, scan.KindBR, 24, int64(clk)+7)
			cap1.Clk = clk
			out := s.Ingest(cap1)
			if out.Err != nil {
				t.Fatal(out.Err)
			}
			if pkt.RehearsalMismatches == 0 && !out.Decoded {
				t.Fatalf("clk %d: rehearsal-clean BR packet failed to decode: %+v", clk, out)
			}
			if out.Decoded {
				decoded++
				if !bytes.Equal(out.Payload, payload) {
					t.Fatalf("clk %d: BR payload corrupted: %x", clk, out.Payload)
				}
			}
		}
		if decoded == 0 {
			t.Fatal("no BR slot decoded end to end")
		}
	})

	t.Run("EDR", func(t *testing.T) {
		syn, err := bluefi.New(bluefi.Options{Chip: bluefi.AR9331, Mode: bluefi.Quality, WiFiChannel: 3})
		if err != nil {
			t.Fatal(err)
		}
		dev := bluefi.Device{LAP: 0x123456, UAP: 0x9A}
		payload := []byte("edr over wifi, 2 Mb/s")
		detections := 0
		for clk := uint32(0); clk < 16; clk += 4 {
			pkt, err := syn.EDRPacket(dev, &bluefi.EDRBasebandPacket{Type: bluefi.EDR2DH1, LTAddr: 1, Payload: payload, Clock: clk}, 24)
			if err != nil {
				t.Fatal(err)
			}
			s := scan.NewScanner(scan.Config{Seed: 41, Device: bt.Device(dev)})
			cap1 := e2eCapture(t, pkt, scan.KindEDR, 24, int64(clk)+3)
			cap1.Clk, cap1.EDRRate = clk, bt.EDR2
			out := s.Ingest(cap1)
			if out.Err != nil {
				t.Fatal(out.Err)
			}
			if out.Detected {
				detections++
			}
			if out.Decoded {
				// The CP boundary makes payload survival exceptional; if
				// it does decode it must still be bit-identical.
				if !bytes.Equal(out.Payload, payload) {
					t.Fatalf("clk %d: EDR payload decoded but corrupted: %x", clk, out.Payload)
				}
			}
		}
		if detections == 0 {
			t.Fatal("EDR access code + header never detected through the full chain")
		}

		// CP-bypass transport leg: the same EDR packet as an ideal phase
		// trajectory (no PSDU layout, so no cyclic prefixes), mixed to
		// its channel offset, through the channel into the scanner —
		// payload must be bit-identical.
		inner := &bt.EDRPacket{Type: bt.EDR2DH1, LTAddr: 1, Payload: payload, Clock: 8}
		theta, _, err := inner.AirPhase(bt.Device(dev), 20)
		if err != nil {
			t.Fatal(err)
		}
		iq := dsp.PhaseToIQ(theta, 1)
		dsp.Mix(iq, 4e6, 20e6, 0) // 2426 MHz under WiFi channel 3 (2422)
		m := channel.Default(18, 1.5)
		m.Seed = 9
		rx, err := m.Apply(iq)
		if err != nil {
			t.Fatal(err)
		}
		s := scan.NewScanner(scan.Config{Seed: 43, Device: bt.Device(dev)})
		out := s.Ingest(scan.Capture{Kind: scan.KindEDR, Channel: 24, OffsetHz: 4e6, IQ: rx, Clk: 8, EDRRate: bt.EDR2})
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if !out.Decoded || !bytes.Equal(out.Payload, payload) {
			t.Fatalf("EDR CP-bypass leg not bit-identical: %+v", out)
		}
	})
}

// stormCaptures builds the interference scenario: one rehearsal-clean
// beacon repeated over the air while a seeded WiFi interferer storms the
// band.
func stormCaptures(t *testing.T, n int) []scan.Capture {
	t.Helper()
	// The paper's canonical pairing (BLE 38 under WiFi 3) has the widest
	// demodulation margins of the golden matrix — other subcarrier
	// alignments decode cleanly but fold under co-channel interference
	// much earlier.
	pkt := goldenBeacon(t, "AR9331", "Quality", 38, 3)
	caps := make([]scan.Capture, n)
	for i := range caps {
		m := channel.Default(18, 1.5)
		m.Seed = int64(1000 + i)
		iq, err := m.Apply(pkt.Waveform())
		if err != nil {
			t.Fatal(err)
		}
		storm := channel.Interferer{PowerDBm: -40, DutyCycle: 0.5, BurstSamples: 4800, Seed: int64(2000 + i)}
		storm.AddTo(iq)
		caps[i] = scan.Capture{Kind: scan.KindBLEAdv, Channel: 38, OffsetHz: pkt.ChannelOffsetHz(), IQ: iq}
	}
	return caps
}

// TestE2EStormPDR: under a seeded interferer storm the scanner keeps
// ≥80% advertising PDR, and the whole run is deterministic per seed.
func TestE2EStormPDR(t *testing.T) {
	const n = 25
	caps := stormCaptures(t, n)
	run := func() (scan.Snapshot, []byte) {
		s := scan.NewScanner(scan.Config{Seed: 77})
		s.SweepParallel(caps)
		snap := s.Snapshot()
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return snap, buf.Bytes()
	}
	snap, js := run()
	if len(snap.Channels) != 1 {
		t.Fatalf("expected one channel cell, got %d", len(snap.Channels))
	}
	st := snap.Channels[0]
	if st.PDR < 0.8 {
		t.Fatalf("storm PDR %.2f below the 0.80 floor (%d/%d)", st.PDR, st.Decoded, st.Attempts)
	}
	if st.PDR == 1 && st.CRCFailures == 0 && st.SyncErrorsSum == 0 {
		t.Logf("storm left no trace at all — consider raising interferer power")
	}
	_, js2 := run()
	if !bytes.Equal(js, js2) {
		t.Fatalf("storm run is not deterministic:\n%s\nvs\n%s", js, js2)
	}
}

// TestE2EConnection drives the full connection lifecycle over the air:
// the BlueFi peripheral advertises through the pool, the central
// answers with a CONN_IND on the advertising channel, and the two hop
// through data channels exchanging keepalives until an ATT read
// completes — every peripheral transmission synthesized via WiFi, every
// reception through the scanner. Run under -race; goroutines must not
// leak.
func TestE2EConnection(t *testing.T) {
	baseline := runtime.NumGoroutine()
	pool, err := bluefi.NewPool(bluefi.Options{Chip: bluefi.AR9331, Mode: bluefi.Quality, WiFiChannel: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	attrs := &scan.AttributeServer{}
	attrs.Set(0x0003, []byte("BlueFi"))
	peripheral := scan.NewPeripheral([6]byte{0xBF, 1, 2, 3, 4, 5}, []byte{0x02, 0x01, 0x06}, attrs)
	central := scan.NewCentral([6]byte{0xC0, 9, 8, 7, 6, 5})

	// transmitAP synthesizes peripheral air bits through the pool and
	// returns the predicted waveform; mm counts rehearsal flags.
	transmitAP := func(air []byte, freqMHz float64) (*bluefi.Packet, error) {
		res := pool.SynthesizeBatch([]bluefi.BatchJob{{Raw: &bluefi.RawGFSKJob{AirBits: air, FreqMHz: freqMHz, BLE: true}}})
		if res[0].Err != nil {
			return nil, res[0].Err
		}
		return res[0].Packet, nil
	}
	apChannel := func(pkt *bluefi.Packet, kind scan.Kind, ch int, seed int64) scan.Capture {
		return e2eCapture(t, pkt, kind, ch, seed)
	}
	// airGFSK models the central's own radio: ideal GFSK, mixed to the
	// channel offset under WiFi channel 3 and run through the channel.
	airGFSK := func(air []byte, ch int, seed int64) scan.Capture {
		wave, err := gfsk.BLEConfig().Modulate(air)
		if err != nil {
			t.Fatal(err)
		}
		off, err := scan.ChannelOffsetHz(ch, 2422)
		if err != nil {
			t.Fatal(err)
		}
		dsp.Mix(wave, off, 20e6, 0)
		m := channel.Default(18, 1.5)
		m.Seed = seed
		iq, err := m.Apply(wave)
		if err != nil {
			t.Fatal(err)
		}
		return scan.Capture{Channel: ch, OffsetHz: off, IQ: iq}
	}

	apScanner := scan.NewScanner(scan.Config{Seed: 101})      // the AP's receive side
	centralScanner := scan.NewScanner(scan.Config{Seed: 102}) // the central's radio

	// 1. ADV_IND: peripheral → air (WiFi synthesis) → central.
	adv, err := peripheral.Advertise()
	if err != nil {
		t.Fatal(err)
	}
	advAir, err := adv.AirBits(38)
	if err != nil {
		t.Fatal(err)
	}
	advPkt, err := transmitAP(advAir, 2426)
	if err != nil {
		t.Fatal(err)
	}
	advOut := centralScanner.Ingest(apChannel(advPkt, scan.KindBLEAdv, 38, 301))
	if !advOut.Decoded || advOut.Adv == nil {
		t.Fatalf("central never heard the ADV_IND (rehearsal mismatches %d): %+v", advPkt.RehearsalMismatches, advOut)
	}
	if advOut.Adv.PDUType != bt.AdvInd {
		t.Fatalf("ADV PDU type %v not connectable", advOut.Adv.PDUType)
	}

	// 2. CONN_IND: central → air (ideal GFSK) → peripheral's scanner.
	const aa, crcInit = uint32(0x50655535), uint32(0xA1B2C3)
	chm, err := bt.NewLEChannelMap(bt.LEDataChannelsInWiFiBand(2422, 1))
	if err != nil {
		t.Fatal(err)
	}
	ci, err := central.Connect(advOut.Adv, aa, crcInit, chm, 7)
	if err != nil {
		t.Fatal(err)
	}
	ciAir, err := ci.AirBits(38)
	if err != nil {
		t.Fatal(err)
	}
	ciCap := airGFSK(ciAir, 38, 302)
	ciCap.Kind = scan.KindBLEAdv
	ciOut := apScanner.Ingest(ciCap)
	if !ciOut.Decoded || ciOut.Adv == nil {
		t.Fatalf("peripheral never heard the CONN_IND: %+v", ciOut)
	}
	parsedCI, err := bt.ParseConnInd(ciOut.Adv)
	if err != nil {
		t.Fatal(err)
	}
	if err := peripheral.HandleConnInd(parsedCI); err != nil {
		t.Fatal(err)
	}
	if peripheral.State() != scan.StateConnected || central.State() != scan.StateConnected {
		t.Fatalf("states after CONN_IND: %v / %v", peripheral.State(), central.State())
	}
	apScanner.Follow(aa, crcInit)
	centralScanner.Follow(aa, crcInit)

	// 3. Connection events: keepalives, then the attribute read. Every
	// event the central transmits ideal GFSK; the peripheral replies
	// through WiFi synthesis. Lost events retransmit.
	if err := central.QueueRead(0x0003); err != nil {
		t.Fatal(err)
	}
	events, apDecodes := 0, 0
	for ev := 0; ev < 24; ev++ {
		chC, err := central.NextChannel()
		if err != nil {
			t.Fatal(err)
		}
		chP, err := peripheral.NextChannel()
		if err != nil {
			t.Fatal(err)
		}
		if chC != chP {
			t.Fatalf("event %d: hop selectors diverged (%d vs %d)", ev, chC, chP)
		}
		events++

		tx, err := central.NextPDU()
		if err != nil {
			t.Fatal(err)
		}
		txAir, err := tx.AirBits(aa, chC, crcInit)
		if err != nil {
			t.Fatal(err)
		}
		txCap := airGFSK(txAir, chC, int64(400+ev))
		txCap.Kind = scan.KindBLEData
		txOut := apScanner.Ingest(txCap)
		if !txOut.Decoded || txOut.Data == nil {
			continue // event lost central→peripheral; both sides hop on
		}
		rsp, err := peripheral.HandleEvent(txOut.Data)
		if err != nil {
			t.Fatal(err)
		}
		rspAir, err := rsp.AirBits(aa, chC, crcInit)
		if err != nil {
			t.Fatal(err)
		}
		freq, err := bt.BLEChannelMHz(chC)
		if err != nil {
			t.Fatal(err)
		}
		rspPkt, err := transmitAP(rspAir, freq)
		if err != nil {
			t.Fatal(err)
		}
		rspCap := apChannel(rspPkt, scan.KindBLEData, chC, int64(500+ev))
		rspOut := centralScanner.Ingest(rspCap)
		if !rspOut.Decoded || rspOut.Data == nil {
			continue // reply lost peripheral→central; central retransmits
		}
		apDecodes++
		if err := central.HandleSlave(rspOut.Data); err != nil {
			t.Fatal(err)
		}
		if v, ok := central.Value(0x0003); ok && bytes.Equal(v, []byte("BlueFi")) {
			break
		}
	}
	v, ok := central.Value(0x0003)
	if !ok || !bytes.Equal(v, []byte("BlueFi")) {
		t.Fatalf("attribute read never completed over %d events (%d replies decoded): %q, %v", events, apDecodes, v, ok)
	}
	t.Logf("connection completed: %d events, %d synthesized replies decoded", events, apDecodes)

	pool.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
