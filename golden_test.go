package bluefi_test

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bluefi"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_psdus.json from the current synthesis output")

// goldenVector pins one synthesized PSDU: chip model × mode × BLE/WiFi
// channel pair, for a fixed beacon. The committed vectors make synthesis
// determinism externally visible — any change to the pipeline that moves
// a single bit fails this test, and the parallel rehearsal search must
// reproduce them no matter how many workers it fans over (run with
// -cpu 1,4,8: GOMAXPROCS sizes the default search parallelism).
type goldenVector struct {
	Chip        string `json:"chip"`
	Mode        string `json:"mode"`
	BLEChannel  int    `json:"bleChannel"`
	WiFiChannel int    `json:"wifiChannel"`
	MCS         int    `json:"mcs"`
	Mismatches  int    `json:"rehearsalMismatches"`
	PSDU        string `json:"psduHex"`
}

var goldenChips = map[string]bluefi.ChipModel{
	"AR9331":    bluefi.AR9331,
	"RTL8811AU": bluefi.RTL8811AU,
}

var goldenModes = map[string]bluefi.Mode{
	"Quality":  bluefi.Quality,
	"RealTime": bluefi.RealTime,
}

// Advertising channels and WiFi channels that cover them. Channel 37
// (2402 MHz) sits outside every usable WiFi channel plan, so the matrix
// covers 38 (2426 MHz) from two different WiFi channels — different
// subcarrier alignments — and 39 (2480 MHz) in channel 13.
var goldenChannels = []struct{ ble, wifi int }{
	{38, 3},
	{38, 4},
	{39, 13},
}

func goldenBeacon(t *testing.T, chipName, modeName string, bleCh, wifiCh int) *bluefi.Packet {
	t.Helper()
	syn, err := bluefi.New(bluefi.Options{
		Chip:        goldenChips[chipName],
		Mode:        goldenModes[modeName],
		WiFiChannel: wifiCh,
	})
	if err != nil {
		t.Fatal(err)
	}
	ib := bluefi.IBeacon{Major: 0xB1, Minor: 0xF1}
	pkt, err := syn.Beacon(ib.ADStructures(), [6]byte{0xBF, 0x01, 0x02, 0x03, 0x04, 0x05}, bleCh)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func goldenPath() string { return filepath.Join("testdata", "golden_psdus.json") }

func goldenCases(short bool) []goldenVector {
	var out []goldenVector
	for _, chipName := range []string{"AR9331", "RTL8811AU"} {
		for _, modeName := range []string{"Quality", "RealTime"} {
			for _, ch := range goldenChannels {
				if short && ch.wifi != 3 {
					continue // short mode: the 38/3 pair per chip × mode
				}
				out = append(out, goldenVector{Chip: chipName, Mode: modeName, BLEChannel: ch.ble, WiFiChannel: ch.wifi})
			}
		}
	}
	return out
}

// TestGoldenPSDUs synthesizes every vector and compares byte-for-byte
// against the committed goldens. Run with -update-golden after an
// intentional pipeline change; review the diff like any other code.
func TestGoldenPSDUs(t *testing.T) {
	if *updateGolden {
		var vectors []goldenVector
		for _, c := range goldenCases(false) {
			pkt := goldenBeacon(t, c.Chip, c.Mode, c.BLEChannel, c.WiFiChannel)
			c.MCS = pkt.MCS
			c.Mismatches = pkt.RehearsalMismatches
			c.PSDU = hex.EncodeToString(pkt.PSDU)
			vectors = append(vectors, c)
		}
		data, err := json.MarshalIndent(vectors, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden vectors to %s", len(vectors), goldenPath())
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing goldens (regenerate with -update-golden): %v", err)
	}
	var vectors []goldenVector
	if err := json.Unmarshal(data, &vectors); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]goldenVector{}
	for _, v := range vectors {
		byKey[fmt.Sprintf("%s/%s/ble%d-wifi%d", v.Chip, v.Mode, v.BLEChannel, v.WiFiChannel)] = v
	}
	for _, c := range goldenCases(testing.Short()) {
		c := c
		name := fmt.Sprintf("%s/%s/ble%d-wifi%d", c.Chip, c.Mode, c.BLEChannel, c.WiFiChannel)
		t.Run(name, func(t *testing.T) {
			want, ok := byKey[name]
			if !ok {
				t.Fatalf("no golden vector for %s (regenerate with -update-golden)", name)
			}
			wantPSDU, err := hex.DecodeString(want.PSDU)
			if err != nil {
				t.Fatal(err)
			}
			pkt := goldenBeacon(t, c.Chip, c.Mode, c.BLEChannel, c.WiFiChannel)
			if pkt.MCS != want.MCS {
				t.Errorf("MCS %d, golden %d", pkt.MCS, want.MCS)
			}
			if pkt.RehearsalMismatches != want.Mismatches {
				t.Errorf("RehearsalMismatches %d, golden %d", pkt.RehearsalMismatches, want.Mismatches)
			}
			if !bytes.Equal(pkt.PSDU, wantPSDU) {
				i := 0
				for i < len(pkt.PSDU) && i < len(wantPSDU) && pkt.PSDU[i] == wantPSDU[i] {
					i++
				}
				t.Errorf("PSDU differs from golden at byte %d (%d vs %d bytes total)", i, len(pkt.PSDU), len(wantPSDU))
			}
		})
	}
}
