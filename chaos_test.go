package bluefi

// Chaos suite: the fault-tolerance acceptance tests. Everything here
// runs with deterministic fault injection (internal/faults) against the
// hardened pool and the degradation-aware audio path, and is wired into
// `make chaos` (go test -race -run TestChaos). The invariants under
// test: injected faults never panic out of the library, the pool keeps
// its capacity through crashes, the stream keeps shipping ≥80% of
// frames through a fault storm, health recovers once faults stop, and
// no goroutines leak.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bluefi/internal/obs/flight"
)

// chaosTone builds one Send's worth of PCM for the stream.
func chaosTone(stream *AudioStream, phase int) [][]float64 {
	pcm := make([][]float64, stream.Channels())
	for ch := range pcm {
		pcm[ch] = make([]float64, stream.SamplesPerSend())
		for i := range pcm[ch] {
			pcm[ch][i] = 8000 * math.Sin(2*math.Pi*440/16000*float64(phase+i))
		}
	}
	return pcm
}

// expectGoroutines waits for the goroutine count to settle back to the
// baseline; abandoned pool attempts and respawned workers need a moment
// to unwind.
func expectGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosQueuePolicies exercises the bounded queue's three overload
// policies and its closed-state semantics in isolation.
func TestChaosQueuePolicies(t *testing.T) {
	mkJob := func() *poolJob { return &poolJob{done: make(chan struct{})} }

	t.Run("Reject", func(t *testing.T) {
		q := newJobQueue(2, Reject, false, nil)
		if err := q.push(mkJob()); err != nil {
			t.Fatal(err)
		}
		if err := q.push(mkJob()); err != nil {
			t.Fatal(err)
		}
		if err := q.push(mkJob()); !errors.Is(err, ErrPoolOverloaded) {
			t.Fatalf("overflow push: %v, want ErrPoolOverloaded", err)
		}
		// Draining makes room again.
		if q.pop() == nil {
			t.Fatal("pop on a non-empty queue")
		}
		if err := q.push(mkJob()); err != nil {
			t.Fatalf("push after drain: %v", err)
		}
	})

	t.Run("DropOldest", func(t *testing.T) {
		q := newJobQueue(1, DropOldest, false, nil)
		oldest := mkJob()
		if err := q.push(oldest); err != nil {
			t.Fatal(err)
		}
		newest := mkJob()
		if err := q.push(newest); err != nil {
			t.Fatalf("DropOldest refused the new job: %v", err)
		}
		select {
		case <-oldest.done:
			if !errors.Is(oldest.err, ErrJobShed) {
				t.Fatalf("evicted job failed with %v, want ErrJobShed", oldest.err)
			}
		default:
			t.Fatal("evicted job was not failed")
		}
		if got := q.pop(); got != newest {
			t.Fatal("queue kept the old job instead of the new one")
		}
	})

	t.Run("Block", func(t *testing.T) {
		q := newJobQueue(1, Block, false, nil)
		if err := q.push(mkJob()); err != nil {
			t.Fatal(err)
		}
		unblocked := make(chan error, 1)
		go func() { unblocked <- q.push(mkJob()) }()
		select {
		case err := <-unblocked:
			t.Fatalf("push on a full Block queue returned early: %v", err)
		case <-time.After(50 * time.Millisecond):
		}
		q.pop() // make room
		if err := <-unblocked; err != nil {
			t.Fatalf("unblocked push failed: %v", err)
		}
	})

	t.Run("Closed", func(t *testing.T) {
		q := newJobQueue(2, Block, false, nil)
		queued := mkJob()
		if err := q.push(queued); err != nil {
			t.Fatal(err)
		}
		q.close()
		if err := q.push(mkJob()); !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("push after close: %v, want ErrPoolClosed", err)
		}
		// Queued work drains before workers see the closed marker.
		if got := q.pop(); got != queued {
			t.Fatal("close dropped a queued job")
		}
		if got := q.pop(); got != nil {
			t.Fatalf("pop on closed+empty queue returned %v, want nil", got)
		}
		if n := q.failPending(ErrPoolClosed); n != 0 {
			t.Fatalf("failPending on an empty queue dropped %d", n)
		}
	})
}

// TestChaosBatchAfterClose: the seed's panic-on-send is gone — every
// submission path on a closed pool fails with the typed ErrPoolClosed.
func TestChaosBatchAfterClose(t *testing.T) {
	pool, err := NewPool(Options{Mode: RealTime}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	jobs := []BatchJob{{Beacon: &BeaconJob{ADStructures: []byte{2, 0x01, 0x06}}}}
	for i, res := range pool.SynthesizeBatch(jobs) {
		if !errors.Is(res.Err, ErrPoolClosed) {
			t.Fatalf("SynthesizeBatch[%d] after Close: %v, want ErrPoolClosed", i, res.Err)
		}
	}
	for i, res := range pool.BeaconBatch([]BeaconJob{{ADStructures: []byte{2, 0x01, 0x06}}}) {
		if !errors.Is(res.Err, ErrPoolClosed) {
			t.Fatalf("BeaconBatch[%d] after Close: %v, want ErrPoolClosed", i, res.Err)
		}
	}
	if _, err := pool.NewAudioStream(AudioConfig{Device: Device{LAP: 1}}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("NewAudioStream after Close: %v, want ErrPoolClosed", err)
	}
}

// TestChaosDoubleCloseIdempotent: regression for the double-Close
// panic — Close and Shutdown may be called any number of times, from
// any goroutine, and every call returns once the drain completes.
func TestChaosDoubleCloseIdempotent(t *testing.T) {
	pool, err := NewPool(Options{Mode: RealTime}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close() // used to panic "bluefi: Pool closed twice"
	if err := pool.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after Close: %v", err)
	}

	// Concurrent closers all return, none panic.
	pool2, err := NewPool(Options{Mode: RealTime, QueueDepth: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool2.Close()
		}()
	}
	wg.Wait()
	res := pool2.BeaconBatch([]BeaconJob{{Addr: [6]byte{0xBF}, BLEChannel: 38}})
	if len(res) != 1 || !errors.Is(res[0].Err, ErrPoolClosed) {
		t.Fatalf("submit after close: %+v, want ErrPoolClosed", res)
	}
}

// TestChaosShutdownDeadline: Shutdown under a deadline fails queued
// jobs with ErrPoolClosed, returns the context error, and still joins
// every worker (the in-flight job cannot be interrupted).
func TestChaosShutdownDeadline(t *testing.T) {
	pool, err := NewPool(Options{Mode: RealTime, QueueDepth: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	var once atomic.Bool
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			results <- pool.tryOne(noDeadline, func(*Synthesizer) error {
				if once.CompareAndSwap(false, true) {
					close(started)
				}
				<-release
				return nil
			})
		}()
	}
	<-started // one job holds the worker; the rest sit in the queue
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- pool.Shutdown(ctx) }()
	time.Sleep(60 * time.Millisecond) // let the deadline fire and pending jobs fail
	close(release)
	if err := <-done; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown returned %v, want DeadlineExceeded", err)
	}
	var closed, finished int
	for i := 0; i < 4; i++ {
		switch err := <-results; {
		case err == nil:
			finished++
		case errors.Is(err, ErrPoolClosed):
			closed++
		default:
			t.Fatalf("unexpected job error %v", err)
		}
	}
	// The held job (and any the worker popped before the deadline)
	// finish; the rest were failed by the deadline.
	if finished < 1 || closed < 1 || finished+closed != 4 {
		t.Fatalf("finished=%d closed=%d, want ≥1 of each summing to 4", finished, closed)
	}
}

// TestChaosJobTimeoutAndRetry: a first attempt stuck past JobTimeout is
// abandoned and the retry succeeds; without retry budget the timeout
// surfaces as ErrJobTimeout.
func TestChaosJobTimeoutAndRetry(t *testing.T) {
	// Two workers: the abandoned first attempt keeps one busy while the
	// retry lands on the other.
	pool, err := NewPool(Options{
		Mode:       RealTime,
		JobTimeout: 40 * time.Millisecond,
		Retry:      RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var attempts atomic.Int32
	v, err := poolDo(pool, func(*Synthesizer) (int, error) {
		if attempts.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // blow the deadline once
		}
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("poolDo = (%d, %v), want (7, nil)", v, err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("%d attempts, want 2 (timeout then success)", got)
	}

	// No retry budget: the timeout is the caller's error.
	_, err = poolDo(pool, func(*Synthesizer) (int, error) {
		time.Sleep(300 * time.Millisecond)
		return 0, nil
	})
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("unretried slow job: %v, want ErrJobTimeout", err)
	}
}

// TestChaosWorkerPanicRespawn: a panicking job fails with *PanicError
// carrying the panic value, the worker respawns, and the pool retains
// full capacity — repeated crashes never wedge Close.
func TestChaosWorkerPanicRespawn(t *testing.T) {
	baseline := runtime.NumGoroutine()
	pool, err := NewPool(Options{Mode: RealTime}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, err := poolDo(pool, func(*Synthesizer) (int, error) {
			panic("chaos")
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Value != "chaos" {
			t.Fatalf("crash %d: %v, want *PanicError{chaos}", i, err)
		}
	}
	// Capacity survives: real work still runs on both workers. (BLE
	// channel 38 is the advertising channel WiFi channel 3 covers.)
	res := pool.BeaconBatch([]BeaconJob{
		{ADStructures: []byte{2, 0x01, 0x06}, BLEChannel: 38},
		{ADStructures: []byte{2, 0x01, 0x06}, BLEChannel: 38},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("post-crash job %d failed: %v", i, r.Err)
		}
	}
	if pool.Workers() != 2 {
		t.Fatalf("worker count %d after respawns, want 2", pool.Workers())
	}
	pool.Close()
	expectGoroutines(t, baseline)
}

// TestChaosInjectedSynthErrorsRetried: seed-driven synthesis errors are
// transient by contract — the retry policy absorbs them, and whatever
// still fails is tagged as injected, never a silent wrong result.
func TestChaosInjectedSynthErrorsRetried(t *testing.T) {
	pool, err := NewPool(Options{
		Mode:   RealTime,
		Faults: &FaultPlan{Seed: 11, SynthErrorRate: 0.5, MaxInjections: 6},
		Retry:  RetryPolicy{MaxAttempts: 8, Backoff: time.Millisecond},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	jobs := make([]BeaconJob, 30)
	for i := range jobs {
		jobs[i] = BeaconJob{ADStructures: []byte{2, 0x01, 0x06}, BLEChannel: 38}
	}
	ok := 0
	for i, res := range pool.BeaconBatch(jobs) {
		switch {
		case res.Err == nil:
			ok++
		case errors.Is(res.Err, ErrInjectedFault):
			// budget-exhausting bad luck: tagged, not mysterious
		default:
			t.Fatalf("job %d: non-injected error %v", i, res.Err)
		}
	}
	if ok < len(jobs)-2 {
		t.Fatalf("only %d/%d jobs survived the retry policy", ok, len(jobs))
	}
}

// TestChaosAcceptance is the ISSUE acceptance scenario: a seeded storm
// of worker panics, 2× latency inflation and 30%-duty interference
// against a degradation-enabled stream. The stream must ship ≥80% of
// frames, never let a panic out of the library, recover to Healthy
// within a bounded number of sends after the fault budget is spent, and
// leak zero goroutines.
func TestChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	baseline := runtime.NumGoroutine()
	reg := NewTelemetry()
	pool, err := NewPool(Options{
		Mode:      RealTime,
		Telemetry: reg,
		Faults: &FaultPlan{
			Seed:             1,
			WorkerPanicRate:  0.05,
			LatencyRate:      0.40,
			LatencyFactor:    2,
			InterferenceRate: 0.40,
			InterferenceDuty: 0.30,
			MaxInjections:    40,
		},
		Retry: RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A cheap mono DM1 stream keeps the suite fast; the SlotBudget is far
	// above any real synthesis time, so every deadline miss the governor
	// sees comes from the injector's latency penalty — machine-independent.
	stream, err := pool.NewAudioStream(AudioConfig{
		Device:     Device{LAP: 0x123456, UAP: 0x9A},
		PacketType: DM1,
		SBC:        SBCConfig{SampleRateHz: 16000, Blocks: 4, Subbands: 4, Bitpool: 31},
		Degrade:    &DegradePolicy{},
		SlotBudget: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	phase, sends := 0, 0
	send := func() { // a panic escaping here fails the test — that IS the assertion
		t.Helper()
		if _, err := stream.Send(chaosTone(stream, phase)); err != nil {
			t.Fatalf("send %d: non-transient error escaped the degradation layer: %v", sends, err)
		}
		phase += stream.SamplesPerSend()
		sends++
	}
	for sends < 400 && !pool.inj.Exhausted() {
		send()
	}
	if !pool.inj.Exhausted() {
		t.Fatalf("fault budget not spent after %d sends (%d injected)", sends, pool.inj.Injected())
	}

	// Faults are off now. Recovery must complete within a bounded number
	// of clean sends: two hysteresis ladders of RecoverObservations (8).
	recovered := false
	for i := 0; i < 40; i++ {
		send()
		if stream.Health() == HealthHealthy {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("stream stuck at %v after the storm (report %+v)", stream.Health(), stream.Report())
	}

	rep := stream.Report()
	total := rep.Shipped + rep.Dropped
	if total == 0 {
		t.Fatal("no frames accounted")
	}
	if frac := float64(rep.Shipped) / float64(total); frac < 0.80 {
		t.Fatalf("shipped %d/%d = %.3f of frames, acceptance floor is 0.80 (report %+v)",
			rep.Shipped, total, frac, rep)
	}
	if rep.Transitions == 0 {
		t.Fatal("the storm never moved the health state — injection is inert")
	}

	pool.Close()
	expectGoroutines(t, baseline)
}

// TestChaosDisabledFaultsAreFree: a nil plan and a zero plan both yield
// a nil injector on the public surface — the fault layer costs nothing
// when off, and the synthesis output is byte-identical to the seed path
// (the golden-vector suite holds that line; here we pin the wiring).
func TestChaosDisabledFaultsAreFree(t *testing.T) {
	pool, err := NewPool(Options{Mode: RealTime, Faults: &FaultPlan{Seed: 99}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.inj != nil {
		t.Fatal("zero-rate plan built a live injector")
	}
	syn, err := New(Options{Mode: RealTime})
	if err != nil {
		t.Fatal(err)
	}
	if syn.inj != nil {
		t.Fatal("nil plan built a live injector")
	}
}

// TestChaosMultiSessionStorm is the multi-session acceptance storm
// (DESIGN.md §14): a fleet of sessions over one EDF pool, rapid
// add/remove while a seeded fault storm is running, the global shedding
// budget holding the fleet ship floor, no session starved below its
// share, the flight recorder capturing the admission/eviction/budget
// events, and no goroutines leaked. Runs under `make chaos` (-race).
func TestChaosMultiSessionStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	baseline := runtime.NumGoroutine()
	reg := NewTelemetry()
	rec := flight.New(reg, 0)
	rec.Attach(reg)
	pool, err := NewPool(Options{
		Mode:      RealTime,
		Telemetry: reg,
		EDF:       true,
		Faults: &FaultPlan{
			Seed:             2,
			WorkerPanicRate:  0.02,
			LatencyRate:      0.40,
			LatencyFactor:    2,
			InterferenceRate: 0.40,
			InterferenceDuty: 0.30,
			MaxInjections:    120,
		},
		Retry: RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := pool.NewSessionManager(SessionManagerConfig{
		ServiceSlots:   0.15,
		AdmissionQueue: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One SBC frame per DM1 packet — 3 segments every 1.6 slots: the
	// cheapest synthesis unit, so the storm's wall-clock cost stays
	// inside the chaos tier's budget even under -race.
	stormAudio := func(lap uint32) AudioConfig {
		return AudioConfig{
			Device:     Device{LAP: lap, UAP: 0x9A},
			PacketType: DM1,
			SBC:        SBCConfig{SampleRateHz: 16000, Blocks: 4, Subbands: 4, Bitpool: 31},
			SlotBudget: time.Minute,
		}
	}

	// Ramp to the knee and back: admissions past capacity must be
	// refused (the recorder sees session.reject), then rapid eviction
	// brings the fleet to its storm size.
	var ramp []string
	sawReject := false
	for i := 0; i < 64 && !sawReject; i++ {
		id := fmt.Sprintf("ramp%d", i)
		_, err := sm.Admit(SessionConfig{ID: id, Audio: stormAudio(uint32(0x200 + i))})
		switch {
		case err == nil:
			ramp = append(ramp, id)
		case errors.Is(err, ErrAdmissionRejected):
			sawReject = true
		default:
			t.Fatalf("ramp admit %s: %v", id, err)
		}
	}
	if !sawReject {
		t.Fatal("the ramp never hit the admission knee")
	}
	const fleet = 4
	if len(ramp) < fleet+2 {
		t.Fatalf("knee at %d sessions, need at least %d for the storm", len(ramp), fleet+2)
	}
	for _, id := range ramp {
		if !sm.Evict(id) {
			t.Fatalf("ramp eviction of %s failed", id)
		}
	}

	type member struct {
		id string
		s  *Session
	}
	var live []member
	for i := 0; i < fleet; i++ {
		id := fmt.Sprintf("storm%d", i)
		s, err := sm.Admit(SessionConfig{ID: id, Audio: stormAudio(uint32(0x300 + i))})
		if err != nil {
			t.Fatalf("storm admit %s: %v", id, err)
		}
		live = append(live, member{id: id, s: s})
	}

	// All session handles ever live, for fleet-wide accounting.
	all := append([]member(nil), live...)

	// The storm: round-robin sends with churn — two mid-storm
	// evict+enqueue cycles — until the fault budget is spent.
	phase, round, churns := 0, 0, 0
	for round < 80 && (!pool.inj.Exhausted() || churns < 2) {
		for _, m := range live {
			if _, err := m.s.Send(chaosTone(m.s.Stream(), phase)); err != nil {
				t.Fatalf("round %d session %s: non-transient error escaped: %v", round, m.id, err)
			}
		}
		phase += live[0].s.Stream().SamplesPerSend()
		round++
		if round%5 == 0 && churns < 2 {
			churns++
			victim := live[0]
			if !sm.Evict(victim.id) {
				t.Fatalf("churn eviction of %s failed", victim.id)
			}
			id := fmt.Sprintf("churn%d", churns)
			p, err := sm.Enqueue(SessionConfig{ID: id, Audio: stormAudio(uint32(0x400 + churns))})
			if err != nil {
				t.Fatalf("churn enqueue %s: %v", id, err)
			}
			s, ready, perr := p.Session()
			if !ready || perr != nil {
				t.Fatalf("churn session %s not admitted after an eviction: ready=%v err=%v", id, ready, perr)
			}
			live = append(live[1:], member{id: id, s: s})
			all = append(all, member{id: id, s: s})
		}
	}
	if !pool.inj.Exhausted() {
		t.Fatalf("fault budget not spent after %d rounds", round)
	}
	if churns != 2 {
		t.Fatalf("%d churn cycles ran, want 2", churns)
	}

	// Fleet accounting across every session that ever lived: the global
	// shedding budget must have held the floor (evictions trim the
	// budget's own view, so allow a small margin on the handle sum).
	var shipped, dropped uint64
	for _, m := range all {
		rep := m.s.Report()
		shipped += rep.Shipped
		dropped += rep.Dropped
		if rep.Shipped == 0 {
			t.Errorf("session %s starved: zero shipped packets through the storm", m.id)
		}
	}
	if total := shipped + dropped; float64(shipped) < 0.75*float64(total) {
		t.Fatalf("fleet shipped %d/%d (%.3f), the global floor did not hold", shipped, total, float64(shipped)/float64(total))
	}
	brep := sm.Report().Budget
	if bt := brep.TotalShipped + brep.TotalDropped; bt > 0 {
		if r := float64(brep.TotalShipped) / float64(bt); r < 0.8 {
			t.Fatalf("budget report shipped ratio %.3f below the 0.8 floor", r)
		}
	}
	// No live session starved below its share: sessions that kept
	// requesting drops must have been granted some.
	for _, s := range brep.Sessions {
		if s.Requested >= 10 && s.Dropped == 0 {
			t.Errorf("session %s requested %d drops, granted none — starved out of the budget", s.ID, s.Requested)
		}
	}

	// The flight bundle must carry the session lifecycle events.
	dir := t.TempDir()
	bundle, err := rec.Dump(dir, reg, "a2dp-chaos")
	if err != nil {
		t.Fatal(err)
	}
	var evs []flight.Event
	if err := json.Unmarshal(readFileT(t, filepath.Join(bundle, "events.json")), &evs); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"session.admit", "session.reject", "session.evict"} {
		if kinds[want] == 0 {
			t.Errorf("bundle events missing %s (kinds %v)", want, kinds)
		}
	}
	if kinds["session.budget_exhausted"] == 0 {
		t.Errorf("storm never exhausted the global budget (kinds %v)", kinds)
	}
	if kinds["session.evict"] < 2+len(ramp) {
		t.Errorf("%d evict events for %d evictions", kinds["session.evict"], 2+len(ramp))
	}

	pool.Close()
	expectGoroutines(t, baseline)
}
