// Command bluefi-fleet is the beacon-CDN daemon: N simulated APs
// serving registered beacons as BlueFi PSDUs, sharded by (AP, WiFi
// channel), with a content-addressed PSDU cache de-duplicating
// synthesis across the fleet and per-AP airtime budgets bounding
// admission.
//
//	bluefi-fleet -addr :8400 -aps 64
//	curl -d '{"beacons":[{"id":"door-7","ap":3,"ad":"AgEG",
//	          "addr":"c0:ff:ee:00:00:07"}]}' localhost:8400/fleet/register
//	curl localhost:8400/fleet/stats
//	curl localhost:8400/metrics          # bluefi_fleet_* rollups
//
// SIGINT/SIGTERM drains the shards gracefully: in-flight syntheses
// finish (up to -drain-timeout), new operations are refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bluefi"
	"bluefi/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8400", "listen address for the control plane and telemetry")
	aps := flag.Int("aps", 64, "simulated access points")
	channels := flag.String("channels", "3", "comma-separated WiFi channels per AP (one shard each)")
	workers := flag.Int("workers", 1, "synthesis workers per shard")
	cacheEntries := flag.Int("cache", 4096, "PSDU cache bound in entries")
	budget := flag.Float64("budget", 0.02, "per-AP beacon airtime budget (fraction of the carrier)")
	quality := flag.Bool("quality", false, "synthesize in Quality mode (default RealTime)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	flag.Parse()

	if err := run(*addr, *aps, *channels, *workers, *cacheEntries, *budget, *quality, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "bluefi-fleet: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, aps int, channels string, workers, cacheEntries int, budget float64, quality bool, drainTimeout time.Duration) error {
	var chs []int
	for _, part := range strings.Split(channels, ",") {
		ch, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -channels %q: %w", channels, err)
		}
		chs = append(chs, ch)
	}
	mode := bluefi.RealTime
	if quality {
		mode = bluefi.Quality
	}
	reg := bluefi.NewTelemetry()
	f, err := fleet.New(fleet.Config{
		APs:           aps,
		ChannelsPerAP: chs,
		ShardWorkers:  workers,
		CacheEntries:  cacheEntries,
		APAirtimeCap:  budget,
		Synth:         bluefi.Options{Mode: mode, Telemetry: reg},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	mux.Handle("/fleet/", fleet.Handler(f))
	srv := &http.Server{Handler: mux}

	fmt.Fprintf(os.Stderr, "bluefi-fleet: %d APs × %d channels (%d shards) on http://%s/fleet, telemetry on /metrics\n",
		aps, len(chs), len(f.Shards()), ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	//bluefi:goroutine signal-driven graceful shutdown; exits with the process after the drain completes
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "bluefi-fleet: draining shards...")
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := f.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-fleet: drain: %v\n", err)
		}
		_ = srv.Shutdown(ctx)
	}()

	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	fmt.Fprintln(os.Stderr, "bluefi-fleet: drained, bye")
	return nil
}
