// Command bluefi-fleet is the beacon-CDN daemon: N simulated APs
// serving registered beacons as BlueFi PSDUs, sharded by (AP, WiFi
// channel), with a content-addressed PSDU cache de-duplicating
// synthesis across the fleet and per-AP airtime budgets bounding
// admission.
//
//	bluefi-fleet -addr :8400 -aps 64
//	curl -d '{"beacons":[{"id":"door-7","ap":3,"ad":"AgEG",
//	          "addr":"c0:ff:ee:00:00:07"}]}' localhost:8400/fleet/register
//	curl localhost:8400/fleet/stats
//	curl localhost:8400/metrics          # bluefi_fleet_* rollups
//	curl localhost:8400/debug/slo        # burn rates and alert states
//	curl localhost:8400/debug/flight/    # recent flight-recorder events
//	curl -X POST localhost:8400/debug/flight/dump   # on-demand bundle
//
// The daemon evaluates the fleet's canonical SLOs (registration
// latency, cache hit rate, admission success) on a wall-clock tick and
// keeps a black-box flight recorder attached to the registry's event
// stream. The moment any SLO pages, a diagnostic bundle — events,
// metrics, traces, goroutine and heap profiles — lands under
// -flight-dir.
//
// SIGINT/SIGTERM drains the shards gracefully: in-flight syntheses
// finish (up to -drain-timeout), new operations are refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bluefi"
	"bluefi/internal/fleet"
	"bluefi/internal/obs/flight"
	"bluefi/internal/obs/slo"
)

// options carries the parsed flags into run.
type options struct {
	addr         string
	aps          int
	channels     string
	workers      int
	cacheEntries int
	budget       float64
	quality      bool
	drainTimeout time.Duration
	sloInterval  time.Duration
	flightDir    string
	flightEvents int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8400", "listen address for the control plane and telemetry")
	flag.IntVar(&o.aps, "aps", 64, "simulated access points")
	flag.StringVar(&o.channels, "channels", "3", "comma-separated WiFi channels per AP (one shard each)")
	flag.IntVar(&o.workers, "workers", 1, "synthesis workers per shard")
	flag.IntVar(&o.cacheEntries, "cache", 4096, "PSDU cache bound in entries")
	flag.Float64Var(&o.budget, "budget", 0.02, "per-AP beacon airtime budget (fraction of the carrier)")
	flag.BoolVar(&o.quality, "quality", false, "synthesize in Quality mode (default RealTime)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown bound")
	flag.DurationVar(&o.sloInterval, "slo-interval", time.Second, "SLO burn-rate evaluation tick")
	flag.StringVar(&o.flightDir, "flight-dir", "flight", "directory for flight-recorder bundles (dumped on SLO page or POST /debug/flight/dump)")
	flag.IntVar(&o.flightEvents, "flight-events", 4096, "flight-recorder event ring bound")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "bluefi-fleet: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	addr, aps, channels := o.addr, o.aps, o.channels
	workers, cacheEntries, budget := o.workers, o.cacheEntries, o.budget
	quality, drainTimeout := o.quality, o.drainTimeout
	var chs []int
	for _, part := range strings.Split(channels, ",") {
		ch, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -channels %q: %w", channels, err)
		}
		chs = append(chs, ch)
	}
	mode := bluefi.RealTime
	if quality {
		mode = bluefi.Quality
	}
	reg := bluefi.NewTelemetry()
	f, err := fleet.New(fleet.Config{
		APs:           aps,
		ChannelsPerAP: chs,
		ShardWorkers:  workers,
		CacheEntries:  cacheEntries,
		APAirtimeCap:  budget,
		Synth:         bluefi.Options{Mode: mode, Telemetry: reg},
	})
	if err != nil {
		return err
	}

	// Observability plane: flight recorder on the registry's event
	// stream, SLO engine over the fleet's canonical objectives, and a
	// page→bundle hook so the black box is written the moment an SLO
	// trips — not when an operator remembers to ask.
	rec := flight.New(reg, o.flightEvents)
	rec.Attach(reg)
	eng := slo.NewEngine(reg)
	for _, spec := range f.SLOSpecs() {
		eng.Add(spec)
	}
	eng.OnPage(func(ep slo.Episode) {
		bundle, err := rec.Dump(o.flightDir, reg, "slo-page:"+ep.SLO)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-fleet: flight dump: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "bluefi-fleet: SLO %s paged (peak burn %.1f) — flight bundle %s\n",
			ep.SLO, ep.PeakBurn, bundle)
	})
	ctx, stopSLO := context.WithCancel(context.Background())
	defer stopSLO()
	eng.Start(ctx, o.sloInterval)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	mux.Handle("/fleet/", fleet.Handler(f))
	mux.Handle("/debug/slo", eng.Handler())
	mux.Handle("/debug/flight/", http.StripPrefix("/debug/flight", rec.Handler(reg, o.flightDir)))
	srv := &http.Server{Handler: mux}

	fmt.Fprintf(os.Stderr, "bluefi-fleet: %d APs × %d channels (%d shards) on http://%s/fleet, telemetry on /metrics\n",
		aps, len(chs), len(f.Shards()), ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	//bluefi:goroutine signal-driven graceful shutdown; exits with the process after the drain completes
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "bluefi-fleet: draining shards...")
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := f.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-fleet: drain: %v\n", err)
		}
		_ = srv.Shutdown(ctx)
	}()

	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	fmt.Fprintln(os.Stderr, "bluefi-fleet: drained, bye")
	return nil
}
