package main

// Chaos scenarios (-faults): run the degradation-enabled audio pipeline
// under a named deterministic fault plan and report how gracefully it
// degraded — frames shipped vs dropped, slots spent in each health
// state, and whether the stream recovered once the fault budget was
// spent. The report prints to stdout and is appended under the
// "faultScenarios" key of the BENCH_eval.json snapshot (-bench-out), so
// successive changes diff degradation behavior the same way they diff
// ns/op.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"bluefi"
)

// faultScenarios are the named plans. All share a fixed seed: a
// scenario is a reproducible experiment, not a dice roll.
var faultScenarios = map[string]bluefi.FaultPlan{
	// panics: workers crash mid-job; the pool respawns them and the
	// retry policy re-runs the lost jobs.
	"panics": {Seed: 1, WorkerPanicRate: 0.10, MaxInjections: 30},
	// latency: job and segment synthesis times inflate 2×, blowing
	// real-time slot budgets.
	"latency": {Seed: 1, LatencyRate: 0.40, LatencyFactor: 2, MaxInjections: 30},
	// interference: 30%-duty WiFi bursts dirty the stream's channel.
	"interference": {Seed: 1, InterferenceRate: 0.40, InterferenceDuty: 0.30, MaxInjections: 30},
	// storm: the ISSUE acceptance mix — panics + 2× latency + 30%-duty
	// interference at once.
	"storm": {Seed: 1, WorkerPanicRate: 0.05, LatencyRate: 0.40, LatencyFactor: 2,
		InterferenceRate: 0.40, InterferenceDuty: 0.30, MaxInjections: 40},
}

// degradationReport is the JSON row appended to the snapshot.
type degradationReport struct {
	Scenario   string                   `json:"scenario"`
	Seed       int64                    `json:"seed"`
	Sends      int                      `json:"sends"`
	Injected   int64                    `json:"injectedFaults"`
	ShipFrac   float64                  `json:"shippedFraction"`
	Recovered  bool                     `json:"recoveredToHealthy"`
	FinalState string                   `json:"finalState"`
	Stream     bluefi.DegradationReport `json:"stream"`
}

// runFaults drives one scenario for `sends` media packets (plus a
// bounded recovery tail) and appends the report to the snapshot at
// path.
func runFaults(scenario, path string, sends int) error {
	plan, ok := faultScenarios[scenario]
	if !ok {
		return fmt.Errorf("unknown scenario %q (have: panics, latency, interference, storm)", scenario)
	}
	if sends <= 0 {
		sends = 120
	}
	pool, err := bluefi.NewPool(bluefi.Options{
		Mode:   bluefi.RealTime,
		Faults: &plan,
		Retry:  bluefi.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
	}, 2)
	if err != nil {
		return err
	}
	defer pool.Close()
	// The SlotBudget sits far above real synthesis time, so deadline
	// misses in the report are the injector's doing — the scenario
	// measures policy behavior, not this machine's speed.
	stream, err := pool.NewAudioStream(bluefi.AudioConfig{
		Device:     bluefi.Device{LAP: 0xb10ef1, UAP: 0x42},
		PacketType: bluefi.DM1,
		SBC:        bluefi.SBCConfig{SampleRateHz: 16000, Blocks: 4, Subbands: 4, Bitpool: 31},
		Degrade:    &bluefi.DegradePolicy{},
		SlotBudget: time.Minute,
	})
	if err != nil {
		return err
	}
	send := func(phase int) error {
		pcm := make([][]float64, stream.Channels())
		for ch := range pcm {
			pcm[ch] = tonePCM(stream.SamplesPerSend(), phase)
		}
		_, err := stream.Send(pcm)
		return err
	}
	done := 0
	for ; done < sends; done++ {
		if err := send(done * stream.SamplesPerSend()); err != nil {
			return fmt.Errorf("send %d: %w", done, err)
		}
	}
	// Recovery tail: clean sends until Healthy, bounded at 40.
	recovered := stream.Health() == bluefi.HealthHealthy
	for i := 0; i < 40 && !recovered; i++ {
		if err := send(done * stream.SamplesPerSend()); err != nil {
			return fmt.Errorf("recovery send %d: %w", done, err)
		}
		done++
		recovered = stream.Health() == bluefi.HealthHealthy
	}

	srep := stream.Report()
	total := srep.Shipped + srep.Dropped
	frac := 1.0
	if total > 0 {
		frac = float64(srep.Shipped) / float64(total)
	}
	rep := degradationReport{
		Scenario:   scenario,
		Seed:       plan.Seed,
		Sends:      done,
		Injected:   pool.InjectedFaults(),
		ShipFrac:   math.Round(frac*1000) / 1000,
		Recovered:  recovered,
		FinalState: stream.Health().String(),
		Stream:     srep,
	}
	fmt.Printf("faults/%s: %d sends, %d injected faults, shipped %.1f%% (%d/%d), final state %s, recovered=%v\n",
		scenario, rep.Sends, rep.Injected, 100*frac, srep.Shipped, total, rep.FinalState, recovered)
	fmt.Printf("  time in state (slots): healthy=%d degraded=%d shedding=%d, %d transitions\n",
		srep.TimeInStateSlots[0], srep.TimeInStateSlots[1], srep.TimeInStateSlots[2], srep.Transitions)
	return appendFaultReport(path, rep)
}

// appendFaultReport merges the report into the snapshot JSON without
// disturbing the benchmark keys: the file round-trips through a generic
// map and only "faultScenarios" is touched.
func appendFaultReport(path string, rep degradationReport) error {
	snap := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("existing %s is not JSON: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	prev, _ := snap["faultScenarios"].([]any)
	snap["faultScenarios"] = append(prev, rep)
	data, err := json.MarshalIndent(snap, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended scenario %q to %s\n", rep.Scenario, path)
	return nil
}
