package main

// Benchmark regression harness (-bench-json): runs the §4.8
// packet-generation benches and the Fig 9/10 harnesses under
// testing.Benchmark and writes BENCH_*.json with ns/op and allocs/op —
// a committed-format snapshot that successive changes diff against.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"bluefi"
	"bluefi/internal/bt"
	"bluefi/internal/core"
	"bluefi/internal/eval"
	"bluefi/internal/gfsk"
	"bluefi/internal/obs"
)

// benchResult is one row of the JSON snapshot.
type benchResult struct {
	Name        string  `json:"name"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// stageRow is one per-stage timing entry, sourced from the telemetry
// registry rather than hand-threaded Timings structs — the two agree by
// construction (the histograms and Result.Timings share one span
// measurement), and the registry also counts every search candidate.
type stageRow struct {
	Mode    string  `json:"mode"`
	Packet  string  `json:"packet"`
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	MeanNs  float64 `json:"meanNs"`
	TotalNs float64 `json:"totalNs"`
}

type benchSnapshot struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"goVersion"`
	NumCPU    int           `json:"numCPU"`
	Results   []benchResult `json:"results"`
	Stages    []stageRow    `json:"stageBreakdown"`
}

func record(out *benchSnapshot, name string, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	out.Results = append(out.Results, benchResult{
		Name:        name,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	})
	fmt.Printf("  %-44s %12.0f ns/op %10d allocs/op (n=%d, P=%d)\n",
		name, out.Results[len(out.Results)-1].NsPerOp, r.AllocsPerOp(), r.N, runtime.GOMAXPROCS(0))
}

// sec48Bench mirrors bench_test.go's §4.8 scenario: PSDU-only synthesis
// of a DM packet, one synthesizer per goroutine.
func sec48Bench(mode core.Mode, payloadLen int, pt bt.PacketType, parallel bool) func(b *testing.B) {
	return func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.Mode = mode
		opts.GFSK = gfsk.BRConfig()
		opts.PSDUOnly = true
		opts.DynamicScale = false
		pkt := &bt.Packet{Type: pt, LTAddr: 1, Payload: make([]byte, payloadLen)}
		air, err := pkt.AirBits(bt.Device{LAP: 0x123456, UAP: 0x9A})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if parallel {
			b.RunParallel(func(pb *testing.PB) {
				s, err := core.New(opts)
				if err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					if _, err := s.Synthesize(air, 2426); err != nil {
						b.Error(err)
						return
					}
				}
			})
			return
		}
		s, err := core.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := s.Synthesize(air, 2426); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// phaseSearchBench isolates the rehearsal-scored search: full synthesis
// of a beacon with the candidate search serial or fanned over workers.
func phaseSearchBench(parallelism int) func(b *testing.B) {
	return func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.GFSK = gfsk.BLEConfig()
		opts.SearchParallelism = parallelism
		s, err := core.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		ib := bluefi.IBeacon{Major: 3}
		adv := &bt.Advertisement{PDUType: bt.AdvNonconnInd, AdvA: [6]byte{1, 2, 3, 4, 5, 6}, Data: ib.ADStructures()}
		air, err := adv.AirBits(38)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Synthesize(air, 2426); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func fig9Bench(parallelism int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := eval.DefaultFig9()
			cfg.PacketsPerChannel = 2
			cfg.Parallelism = parallelism
			if _, err := eval.Fig9SingleSlotPER(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func fig10Bench() func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := eval.DefaultFig10()
			cfg.Packets = 4
			if _, err := eval.Fig10AudioPER(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func poolBeaconBench() func(b *testing.B) {
	return func(b *testing.B) {
		pool, err := bluefi.NewPool(bluefi.Options{Chip: bluefi.RTL8811AU, Mode: bluefi.RealTime}, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		const batch = 8
		jobs := make([]bluefi.BeaconJob, batch)
		for i := range jobs {
			ib := bluefi.IBeacon{Major: uint16(i + 1)}
			jobs[i] = bluefi.BeaconJob{ADStructures: ib.ADStructures(), Addr: [6]byte{1, 2, 3, 4, 5, byte(i)}, BLEChannel: 38}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			for _, res := range pool.BeaconBatch(jobs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	}
}

// stageBreakdown runs the §4.8 timing scenario with a telemetry registry
// attached and reads the per-stage breakdown back out of the
// bluefi_core_stage_seconds histograms.
func stageBreakdown(iterations int) ([]stageRow, error) {
	var rows []stageRow
	for _, mode := range []core.Mode{core.Quality, core.RealTime} {
		for _, pc := range []struct {
			name       string
			pt         bt.PacketType
			payloadLen int
		}{
			{"1-slot (DM1)", bt.DM1, 17},
			{"5-slot (DM5)", bt.DM5, 224},
		} {
			reg := obs.NewRegistry()
			opts := core.DefaultOptions()
			opts.Mode = mode
			opts.GFSK = gfsk.BRConfig()
			opts.PSDUOnly = true
			opts.DynamicScale = false
			opts.Telemetry = reg
			s, err := core.New(opts)
			if err != nil {
				return nil, err
			}
			pkt := &bt.Packet{Type: pc.pt, LTAddr: 1, Payload: make([]byte, pc.payloadLen)}
			for i := 0; i < iterations; i++ {
				pkt.Clock = uint32(4 * i)
				air, err := pkt.AirBits(bt.Device{LAP: 0x123456, UAP: 0x9A})
				if err != nil {
					return nil, err
				}
				if _, err := s.Synthesize(air, 2426); err != nil {
					return nil, err
				}
			}
			for _, fam := range reg.Snapshot().Families {
				if fam.Name != "bluefi_core_stage_seconds" {
					continue
				}
				for _, m := range fam.Metrics {
					for _, l := range m.Labels {
						if l.Key != "stage" || m.Count == 0 {
							continue
						}
						rows = append(rows, stageRow{
							Mode:    mode.String(),
							Packet:  pc.name,
							Stage:   l.Value,
							Count:   m.Count,
							MeanNs:  m.Sum * 1e9 / float64(m.Count),
							TotalNs: m.Sum * 1e9,
						})
					}
				}
			}
		}
	}
	return rows, nil
}

// allocGateTolerance is how far sec48 allocs/op may drift above the
// committed BENCH_eval.json snapshot before the gate fails.
const allocGateTolerance = 1.05

// runAllocGate re-measures the §4.8 real-time 1-slot scenario and fails
// when its allocs/op exceeds the committed snapshot's
// "sec48/realtime-1slot-cpu1" row by more than 5% — the regression gate
// behind the //bluefi:allocfree hot-path contract. Improvements print a
// reminder to re-snapshot but do not fail.
func runAllocGate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading snapshot: %w (run `make bench-json` to create it)", err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	const row = "sec48/realtime-1slot-cpu1"
	var committed int64 = -1
	for _, r := range snap.Results {
		if r.Name == row {
			committed = r.AllocsPerOp
		}
	}
	if committed < 0 {
		return fmt.Errorf("%s has no %q row", path, row)
	}

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	r := testing.Benchmark(sec48Bench(core.RealTime, 17, bt.DM1, false))
	got := r.AllocsPerOp()
	limit := int64(float64(committed) * allocGateTolerance)
	fmt.Printf("alloc-gate: %s measured %d allocs/op, snapshot %d (limit %d)\n",
		row, got, committed, limit)
	if got > limit {
		return fmt.Errorf("allocs/op regressed: %d > %d (snapshot %d +5%%); fix the regression or re-snapshot with `make bench-json` and justify the diff",
			got, limit, committed)
	}
	if got < committed*95/100 {
		fmt.Printf("alloc-gate: improvement detected (%d → %d); consider re-snapshotting with `make bench-json`\n",
			committed, got)
	}
	return nil
}

// runBenchJSON executes the suite at GOMAXPROCS 1 and 4 (the -cpu 1,4
// comparison: serial baseline versus the concurrency layer) and writes
// the snapshot.
func runBenchJSON(path string) error {
	snap := &benchSnapshot{
		Generated: time.Now().UTC().Format(time.RFC3339), //bluefi:nondeterministic-ok snapshot provenance timestamp in BENCH_eval.json
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		tag := fmt.Sprintf("-cpu%d", procs)
		fmt.Printf("bench-json at GOMAXPROCS=%d:\n", procs)
		record(snap, "sec48/quality-1slot"+tag, sec48Bench(core.Quality, 17, bt.DM1, false))
		record(snap, "sec48/quality-5slot"+tag, sec48Bench(core.Quality, 224, bt.DM5, false))
		record(snap, "sec48/realtime-1slot"+tag, sec48Bench(core.RealTime, 17, bt.DM1, false))
		record(snap, "sec48/realtime-5slot"+tag, sec48Bench(core.RealTime, 224, bt.DM5, false))
		record(snap, "sec48/realtime-1slot-throughput"+tag, sec48Bench(core.RealTime, 17, bt.DM1, true))
		record(snap, "phase-search/serial"+tag, phaseSearchBench(1))
		record(snap, "phase-search/parallel"+tag, phaseSearchBench(4))
		record(snap, "fig9/serial"+tag, fig9Bench(1))
		record(snap, "fig9/parallel"+tag, fig9Bench(4))
		record(snap, "fig10/audio"+tag, fig10Bench())
		record(snap, "pool/beacon-batch"+tag, poolBeaconBench())
	}

	rows, err := stageBreakdown(10)
	if err != nil {
		return err
	}
	snap.Stages = rows
	fmt.Printf("stage breakdown (telemetry-sourced, 10 iterations):\n")
	for _, r := range rows {
		fmt.Printf("  %-10s %-14s %-9s %12.0f ns mean (n=%d)\n", r.Mode, r.Packet, r.Stage, r.MeanNs, r.Count)
	}

	data, err := json.MarshalIndent(snap, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(snap.Results))
	return nil
}
