package main

// A2DP capacity soak (-a2dp-soak): ramp concurrent sessions over one
// shared pool until the admission controller refuses, check the
// projected capacity curve against measured delivery below the knee,
// replay the contended schedule under EDF and FIFO, and run the fault
// storm with the multi-session SLOs in the loop. The gates:
//
//   - the knee exists and admits at least -a2dp-min-sessions;
//   - the capacity curve is monotone and every admitted level projects
//     a miss ratio inside the admission budget;
//   - every admitted session actually ships ≥ the global floor on the
//     clean pool, with zero deadline misses;
//   - EDF does not lose to FIFO on deadline misses or p99 slack over
//     the contended (knee+1) job set;
//   - the ramp dumps a flight bundle carrying the admit/reject trail;
//   - through the storm, at least -a2dp-min-sessions sessions are still
//     shipping at or above the floor when the first SLO page fires (or
//     at storm end when none does).
//
// The result lands in BENCH_eval.json under "a2dpCapacity";
// `make a2dp-soak` runs this in CI.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"bluefi/internal/eval"
)

// runA2DPSoak runs the soak, enforces the CI gates and merges the
// capacity snapshot into the benchmark JSON.
func runA2DPSoak(path, flightDir string, minSessions int) error {
	cfg := eval.DefaultA2DPSoak()
	cfg.FlightDir = flightDir
	fmt.Printf("a2dp soak: %d workers, %.2f service slots/segment, up to %d sessions\n",
		cfg.Workers, cfg.ServiceSlots, cfg.MaxSessions)
	res, err := eval.A2DPSoak(cfg)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatA2DPSoak(res))

	if res.Knee < minSessions {
		return fmt.Errorf("capacity knee at %d sessions, want ≥ %d", res.Knee, minSessions)
	}
	for i, pt := range res.Ramp {
		if i > 0 && pt.Utilization <= res.Ramp[i-1].Utilization {
			return fmt.Errorf("capacity curve not monotone at level %d (%.4f after %.4f)",
				pt.Sessions, pt.Utilization, res.Ramp[i-1].Utilization)
		}
		if pt.MissRatio > 0.05 {
			return fmt.Errorf("admitted level %d projects miss ratio %.4f over the 0.05 budget",
				pt.Sessions, pt.MissRatio)
		}
	}
	if res.Rejected.Sessions != res.Knee+1 || res.Rejected.MissRatio <= 0.05 {
		return fmt.Errorf("refused candidate's projection %+v does not justify rejection", res.Rejected)
	}
	for _, m := range res.Measured {
		if m.ShippedRatio < res.GlobalShipFloor {
			return fmt.Errorf("session %s shipped %.3f below the %.2f floor on the clean pool",
				m.ID, m.ShippedRatio, res.GlobalShipFloor)
		}
		if m.DeadlineMisses > 0 {
			return fmt.Errorf("session %s missed %d deadlines below the knee", m.ID, m.DeadlineMisses)
		}
	}
	if res.EDF.MissRatio > res.FIFO.MissRatio {
		return fmt.Errorf("EDF misses %.4f exceed FIFO's %.4f on the contended set",
			res.EDF.MissRatio, res.FIFO.MissRatio)
	}
	if res.EDF.P99SlackSlots < res.FIFO.P99SlackSlots {
		return fmt.Errorf("EDF p99 slack %.2f slots under FIFO's %.2f on the contended set",
			res.EDF.P99SlackSlots, res.FIFO.P99SlackSlots)
	}
	if res.RampBundle == "" || res.AdmitEvents != res.Knee || res.RejectEvents < 1 {
		return fmt.Errorf("ramp flight bundle %q carries %d admit / %d reject events, want %d / ≥1",
			res.RampBundle, res.AdmitEvents, res.RejectEvents, res.Knee)
	}
	st := res.Storm
	atFloorGate := minSessions
	if st.Sessions < atFloorGate {
		atFloorGate = st.Sessions
	}
	if st.SessionsAtFloor < atFloorGate {
		return fmt.Errorf("only %d/%d storm sessions at the %.2f floor (first page round %d), want ≥ %d",
			st.SessionsAtFloor, st.Sessions, res.GlobalShipFloor, st.FirstPageRound, atFloorGate)
	}
	if st.ShippedRatio < 0.75 {
		return fmt.Errorf("storm fleet shipped %.3f, want ≥ 0.75", st.ShippedRatio)
	}
	return appendA2DPCapacity(path, res)
}

// appendA2DPCapacity merges the soak result into the benchmark JSON
// under "a2dpCapacity", leaving every other key untouched.
func appendA2DPCapacity(path string, res *eval.A2DPSoakResult) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not JSON: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	doc["a2dpCapacity"] = res
	data, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("a2dp capacity snapshot → %s\n", path)
	return nil
}
