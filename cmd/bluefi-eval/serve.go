package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"time"

	"bluefi"
	"bluefi/internal/obs/flight"
	"bluefi/internal/obs/slo"
)

// runServe exposes the telemetry endpoints (/metrics, /metrics.json,
// /traces — plus /health, the audio stream's degradation state and
// report, /debug/slo and /debug/flight) while a continuous synthesis
// workload exercises every instrumented path: pooled beacon/BR batches
// plus an A2DP audio stream. It is the live counterpart of the figure
// runs — point a Prometheus scraper (or curl) at it and watch the
// stage histograms fill.
//
// bluefi_eval_core_timings_nanoseconds_total accumulates
// Packet.Timings().Total() across the workload; the per-stage histogram
// sums in bluefi_core_stage_seconds must stay within ±5% of it — the
// consistency contract between the span-fed histograms and the absorbed
// Timings plumbing.
func runServe(addr string, workers int, flightDir string) error {
	reg := bluefi.NewTelemetry()
	timingsNS := reg.Counter("bluefi_eval_core_timings_nanoseconds_total",
		"sum of Packet.Timings().Total() over the serve workload")

	pool, err := bluefi.NewPool(bluefi.Options{Mode: bluefi.RealTime, Telemetry: reg}, workers)
	if err != nil {
		return err
	}
	defer pool.Close()

	stream, err := pool.NewAudioStream(bluefi.AudioConfig{
		Device:          bluefi.Device{LAP: 0xb10ef1, UAP: 0x42},
		PacketType:      bluefi.DM1,
		SBC:             bluefi.SBCConfig{SampleRateHz: 16000, Blocks: 4, Subbands: 4, Bitpool: 8},
		FramesPerPacket: 1,
		Degrade:         &bluefi.DegradePolicy{},
	})
	if err != nil {
		return err
	}

	// Flight recorder + SLO engine over the stream's own accounting:
	// delivery (shipped vs dropped frames) and healthy airtime (625 µs
	// slots spent outside degradation). A Page dumps a bundle.
	rec := flight.New(reg, 0)
	rec.Attach(reg)
	eng := slo.NewEngine(reg)
	for _, spec := range audioSLOSpecs(stream) {
		eng.Add(spec)
	}
	eng.OnPage(func(ep slo.Episode) {
		bundle, err := rec.Dump(flightDir, reg, "slo-page:"+ep.SLO)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: flight dump: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "bluefi-eval: SLO %s paged (peak burn %.1f) — flight bundle %s\n",
			ep.SLO, ep.PeakBurn, bundle)
	})
	ctx, stopSLO := context.WithCancel(context.Background())
	defer stopSLO()
	eng.Start(ctx, time.Second)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bluefi-eval: serving telemetry on http://%s/metrics (Ctrl-C to stop)\n",
		ln.Addr())

	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	mux.Handle("/debug/slo", eng.Handler())
	mux.Handle("/debug/flight/", http.StripPrefix("/debug/flight", rec.Handler(reg, flightDir)))
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			State  string                   `json:"state"`
			Report bluefi.DegradationReport `json:"report"`
		}{stream.Health().String(), stream.Report()})
	})

	//bluefi:goroutine live-workload generator behind -serve; runs for the process lifetime and dies with it
	go serveWorkload(pool, stream, timingsNS)
	return http.Serve(ln, mux)
}

// serveWorkload loops forever: one mixed pooled batch plus one audio
// Send per round, recording each packet's absorbed Timings total.
func serveWorkload(pool *bluefi.Pool, stream *bluefi.AudioStream, timingsNS *bluefi.TelemetryCounter) {
	pcm := make([][]float64, stream.Channels())
	for round := 0; ; round++ {
		ib := bluefi.IBeacon{Major: uint16(round)}
		jobs := []bluefi.BatchJob{
			{Beacon: &bluefi.BeaconJob{ADStructures: ib.ADStructures(), Addr: [6]byte{0xb1, 0x0e, 0xf1, 0, 0, 1}, BLEChannel: 38}},
			{BR: &bluefi.BRJob{
				Device:    bluefi.Device{LAP: 0xb10ef1, UAP: 0x42},
				Packet:    &bluefi.BasebandPacket{Type: bluefi.DM1, LTAddr: 1, Payload: []byte("bluefi"), Clock: uint32(4 * round)},
				BTChannel: 24,
			}},
		}
		for _, res := range pool.SynthesizeBatch(jobs) {
			if res.Err == nil {
				timingsNS.Add(res.Packet.Timings().Total().Nanoseconds())
			}
		}
		for ch := range pcm {
			pcm[ch] = tonePCM(stream.SamplesPerSend(), round*stream.SamplesPerSend())
		}
		if txs, err := stream.Send(pcm); err == nil {
			for _, tx := range txs {
				timingsNS.Add(tx.Packet.Timings().Total().Nanoseconds())
			}
		}
	}
}

// tonePCM generates one send's worth of a 440 Hz-ish test tone.
func tonePCM(samples, offset int) []float64 {
	out := make([]float64, samples)
	for i := range out {
		out[i] = 0.5 * math.Sin(2*math.Pi*float64(offset+i)/36.0)
	}
	return out
}
