package main

import (
	"fmt"
	"sort"
	"testing"

	"bluefi/internal/bt"
	"bluefi/internal/core"
	"bluefi/internal/gfsk"
	"bluefi/internal/obs"
)

// overheadBudget caps how much an attached telemetry registry may slow
// the §4.8 real-time synthesis path (DESIGN.md §8: ≤5% on ns/op).
const overheadBudget = 1.05

// runObsOverhead measures BenchmarkSynthesize-equivalent ns/op with
// telemetry disabled and attached, and fails when the attached/disabled
// ratio exceeds the budget. The two configurations are measured in
// interleaved pairs — CPU frequency drift on shared runners easily
// swings sequential measurements by more than the 5% budget, while a
// paired ratio taken seconds apart cancels it — and the verdict is the
// median of the per-round ratios. CI runs this via `make obs-overhead`.
func runObsOverhead() error {
	pkt := &bt.Packet{Type: bt.DM1, LTAddr: 1, Payload: make([]byte, 17)}
	air, err := pkt.AirBits(bt.Device{LAP: 0x123456, UAP: 0x9A})
	if err != nil {
		return err
	}
	newSynth := func(reg *obs.Registry) (*core.Synthesizer, error) {
		opts := core.DefaultOptions()
		opts.Mode = core.RealTime
		opts.GFSK = gfsk.BRConfig()
		opts.PSDUOnly = true
		opts.DynamicScale = false
		opts.Telemetry = reg
		return core.New(opts)
	}
	sOff, err := newSynth(nil)
	if err != nil {
		return err
	}
	sOn, err := newSynth(obs.NewRegistry())
	if err != nil {
		return err
	}
	measure := func(s *core.Synthesizer) (float64, error) {
		var synthErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Synthesize(air, 2426); err != nil {
					synthErr = err
					return
				}
			}
		})
		if synthErr != nil {
			return 0, synthErr
		}
		return float64(r.NsPerOp()), nil
	}

	const rounds = 7
	ratios := make([]float64, 0, rounds)
	fmt.Printf("telemetry overhead on real-time synthesis (DM1, PSDU only, %d paired rounds):\n", rounds)
	for round := 0; round < rounds; round++ {
		// Alternate measurement order so a drifting clock penalizes each
		// configuration equally often.
		first, second := sOff, sOn
		if round%2 == 1 {
			first, second = sOn, sOff
		}
		a, err := measure(first)
		if err != nil {
			return err
		}
		b, err := measure(second)
		if err != nil {
			return err
		}
		off, on := a, b
		if round%2 == 1 {
			off, on = b, a
		}
		ratios = append(ratios, on/off)
		fmt.Printf("  round %d: disabled %9.0f ns/op  attached %9.0f ns/op  ratio %.3f\n",
			round+1, off, on, on/off)
	}
	sort.Float64s(ratios)
	ratio := ratios[len(ratios)/2]
	fmt.Printf("  median ratio: %.3f (budget %.2f)\n", ratio, overheadBudget)
	if ratio > overheadBudget {
		return fmt.Errorf("telemetry overhead %.3f exceeds %.2f budget", ratio, overheadBudget)
	}
	return nil
}
