// Command bluefi-eval regenerates every figure and table of the paper's
// evaluation section (§4) on the simulated substrate and prints the text
// equivalent of each plot. EXPERIMENTS.md records the paper-vs-measured
// comparison these outputs feed.
//
//	bluefi-eval -fig all
//	bluefi-eval -fig 9 -n 40
//	bluefi-eval -bench-json            # BENCH_eval.json regression snapshot
//	bluefi-eval -serve :8399           # live /metrics + /health over a synthesis workload
//	bluefi-eval -obs-overhead          # telemetry overhead gate (CI)
//	bluefi-eval -alloc-gate            # §4.8 allocs/op regression gate vs BENCH_eval.json (CI)
//	bluefi-eval -faults storm          # chaos scenario → degradation report
//	bluefi-eval -slo                   # storm replay through the SLO burn-rate engine (CI gate)
//	bluefi-eval -e2e                   # TX→RX conformance matrix → scanner PDR snapshot
//	bluefi-eval -fleet :8400           # beacon-CDN control plane + telemetry
//	bluefi-eval -fleet-soak            # capacity soak + cache-hit-rate gate (CI)
//	bluefi-eval -a2dp-soak             # multi-session A2DP capacity knee + EDF gate (CI)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bluefi/internal/chip"
	"bluefi/internal/eval"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5b, 5c, 6, 7a, 7b, 7c, 8, 9, 10, timing, all")
	n := flag.Int("n", 0, "override per-point sample count (0 = default)")
	benchJSON := flag.Bool("bench-json", false, "run the benchmark suite and write a BENCH_*.json snapshot instead of figures")
	benchOut := flag.String("bench-out", "BENCH_eval.json", "output path for -bench-json")
	serve := flag.String("serve", "", "serve /metrics, /metrics.json and /traces on this address (e.g. :8399) over a continuous synthesis workload, instead of figures")
	serveWorkers := flag.Int("serve-workers", 2, "pool workers for the -serve workload")
	obsOverhead := flag.Bool("obs-overhead", false, "measure telemetry overhead on BenchmarkSynthesize and fail if attached/disabled ns/op exceeds 1.05")
	faultsScenario := flag.String("faults", "", "run a chaos scenario (panics, latency, interference, storm) and append its degradation report to -bench-out")
	sloReplay := flag.Bool("slo", false, "replay the storm scenario through the SLO burn-rate engine, gate on exactly one page episode + recovery + a valid flight bundle, and append the episode summary to -bench-out")
	flightDir := flag.String("flight-dir", "flight", "directory for flight-recorder bundles (-slo, -serve, -fleet)")
	e2e := flag.Bool("e2e", false, "run the loopback conformance matrix (BLE/BR/EDR through channel and scanner) and append the scanner PDR snapshot to -bench-out")
	allocGate := flag.Bool("alloc-gate", false, "re-measure §4.8 real-time allocs/op and fail if it exceeds the committed -bench-out snapshot by more than 5%")
	fleetAddr := flag.String("fleet", "", "serve the beacon-CDN fleet control plane (/fleet/register|update|expire|stats) plus telemetry on this address (e.g. :8400), instead of figures")
	fleetSoak := flag.Bool("fleet-soak", false, "run the fleet capacity soak, enforce the ≥90% steady-state cache hit rate gate, and append the capacity curve to -bench-out")
	fleetAPs := flag.Int("fleet-aps", 64, "simulated APs (one shard each) for -fleet / -fleet-soak")
	fleetBeacons := flag.Int("fleet-beacons", 100000, "registrations for -fleet-soak")
	fleetUnique := flag.Int("fleet-unique", 64, "distinct advertisement payloads for -fleet-soak")
	fleetSeed := flag.Int64("fleet-seed", 8, "workload seed for -fleet-soak")
	a2dpSoak := flag.Bool("a2dp-soak", false, "run the multi-session A2DP capacity soak: ramp sessions to the admission knee, gate on delivery below it and EDF-vs-FIFO slack, and append the capacity curve to -bench-out")
	a2dpMinSessions := flag.Int("a2dp-min-sessions", 3, "minimum sessions the -a2dp-soak knee (and the storm's at-floor count) must sustain")
	flag.Parse()

	if *a2dpSoak {
		if err := runA2DPSoak(*benchOut, *flightDir, *a2dpMinSessions); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: a2dp-soak: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fleetSoak {
		cfg := eval.DefaultFleetSoak()
		cfg.APs = *fleetAPs
		cfg.Beacons = *fleetBeacons
		cfg.UniquePayloads = *fleetUnique
		cfg.Seed = *fleetSeed
		if err := runFleetSoak(*benchOut, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: fleet-soak: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fleetAddr != "" {
		if err := runFleetServe(*fleetAddr, *fleetAPs, *serveWorkers, *flightDir); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: fleet: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *allocGate {
		if err := runAllocGate(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: alloc-gate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *e2e {
		if err := runE2E(*benchOut, *n); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: e2e: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *faultsScenario != "" {
		if err := runFaults(*faultsScenario, *benchOut, *n); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: faults: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sloReplay {
		if err := runSLO(*benchOut, *flightDir); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: slo: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serve != "" {
		if err := runServe(*serve, *serveWorkers, *flightDir); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *obsOverhead {
		if err := runObsOverhead(); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: obs-overhead: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchJSON {
		if err := runBenchJSON(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: bench-json: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("5b", func() error {
		cfg := eval.DefaultFig5(chip.AR9331)
		if *n > 0 {
			cfg.Reports = *n
		}
		traces, err := eval.Fig5Distance(cfg)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatTraces("Fig 5b — RSSI vs distance (AR9331, 18 dBm)", traces))
		return nil
	})
	run("5c", func() error {
		cfg := eval.DefaultFig5(chip.RTL8811AU)
		if *n > 0 {
			cfg.Reports = *n
		}
		traces, err := eval.Fig5Distance(cfg)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatTraces("Fig 5c — RSSI vs distance (RTL8811AU)", traces))
		return nil
	})
	run("6", func() error {
		cfg := eval.DefaultFig6()
		if *n > 0 {
			cfg.PacketsPerLevel = *n
		}
		points, err := eval.Fig6TxPower(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fig 6 — RSSI vs transmit power (1.5 m)")
		last := ""
		for _, p := range points {
			if p.Receiver != last {
				fmt.Printf("  %s:\n", p.Receiver)
				last = p.Receiver
			}
			fmt.Printf("    %4.0f dBm: meanRSSI=%7.1f dBm received=%3.0f%%\n",
				p.TxPowerDBm, p.MeanRSSI, 100*p.Received)
		}
		return nil
	})
	run("7a", func() error {
		packets := 10
		if *n > 0 {
			packets = *n
		}
		pts, err := eval.Fig7aDedicatedBT(packets, 7)
		if err != nil {
			return err
		}
		fmt.Println("Fig 7a — dedicated Bluetooth hardware (8 dBm, 1.5 m)")
		for _, p := range pts {
			fmt.Printf("  %-14s meanRSSI=%7.1f dBm received=%3.0f%%\n", p.Pair, p.MeanRSSI, 100*p.Received)
		}
		return nil
	})
	run("7b", func() error {
		scs, err := eval.Fig7bThroughput(120)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatThroughput(scs))
		return nil
	})
	run("7c", func() error {
		reports := 12
		if *n > 0 {
			reports = *n
		}
		traces, err := eval.Fig7cBackgroundTraffic(reports, 11)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatTraces("Fig 7c — RSSI under saturated background WiFi", traces))
		return nil
	})
	run("8", func() error {
		cfg := eval.DefaultFig8()
		if *n > 0 {
			cfg.PacketsPerStage = *n
		}
		pts, err := eval.Fig8Impairments(cfg)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatImpairments(pts))
		return nil
	})
	run("9", func() error {
		cfg := eval.DefaultFig9()
		if *n > 0 {
			cfg.PacketsPerChannel = *n
		}
		rows, err := eval.Fig9SingleSlotPER(cfg)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatChannelPER("Fig 9 — PER with single-slot (DM1) packets", rows))
		return nil
	})
	run("10", func() error {
		cfg := eval.DefaultFig10()
		if *n > 0 {
			cfg.Packets = *n
		}
		multi, err := eval.Fig10AudioPER(cfg)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatAudio(multi))
		single, err := eval.Fig10AudioSingleSlot(cfg)
		if err != nil {
			return err
		}
		fmt.Println("  (single-slot comparison, §4.7's short-packet trade-off:)")
		fmt.Print(eval.FormatAudio(single))
		return nil
	})
	run("timing", func() error {
		iters := 5
		if *n > 0 {
			iters = *n
		}
		res, err := eval.Sec48Timings(iters)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatTimings(res))
		return nil
	})
}
