package main

// SLO replay (-slo): drive the chaos storm scenario through the
// degradation-enabled audio pipeline with the burn-rate engine ticking
// once per send, and gate on the alerting contract: the storm must
// page exactly once (fast window catches it, hysteresis keeps it one
// episode), the page must dump a valid flight bundle, and the SLO must
// walk back to OK once the fault budget is spent. The episode summary
// is appended under "sloEpisodes" in the BENCH_eval.json snapshot, so
// alerting behavior diffs across changes the same way ns/op does.
//
// `make slo-gate` runs this in CI; on failure the flight bundle is
// uploaded as the debugging artifact.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bluefi"
	"bluefi/internal/obs/flight"
	"bluefi/internal/obs/slo"
)

// sloGateSLO is the objective the replay gates on: stream airtime
// spent Healthy. The storm's governor transitions make its error rate
// spike deterministically, unlike frame drops which depend on how far
// the governor escalates.
const sloGateSLO = "audio_healthy_airtime"

// audioSLOSpecs declares the audio pipeline's SLOs over one stream's
// cumulative degradation accounting. Shared by -serve (wall-clock
// ticks) and -slo (one tick per send).
func audioSLOSpecs(stream *bluefi.AudioStream) []slo.Spec {
	return []slo.Spec{
		{
			Name:        "audio_frame_delivery",
			Description: "99% of encoded audio frames ship (shed frames burn the budget).",
			Objective:   0.99,
			Indicator: func() (float64, float64) {
				rep := stream.Report()
				return float64(rep.Shipped), float64(rep.Shipped + rep.Dropped)
			},
		},
		{
			Name:        sloGateSLO,
			Description: "99% of stream airtime (625 µs slots) is spent in the Healthy state.",
			Objective:   0.99,
			Indicator: func() (float64, float64) {
				rep := stream.Report()
				total := rep.TimeInStateSlots[0] + rep.TimeInStateSlots[1] + rep.TimeInStateSlots[2]
				return float64(rep.TimeInStateSlots[0]), float64(total)
			},
		},
	}
}

// sloReport is the JSON row appended to the snapshot.
type sloReport struct {
	Scenario   string        `json:"scenario"`
	Seed       int64         `json:"seed"`
	Ticks      int64         `json:"ticks"`
	StormTicks int64         `json:"stormTicks"`
	Pages      int           `json:"pages"`
	FinalState string        `json:"finalState"`
	Episodes   []slo.Episode `json:"episodes"`
	Bundle     string        `json:"bundle"`
}

// runSLO replays the storm with the engine in the loop and appends the
// episode summary to the snapshot at path.
func runSLO(path, flightDir string) error {
	plan := faultScenarios["storm"]
	reg := bluefi.NewTelemetry()
	rec := flight.New(reg, 0)
	rec.Attach(reg)

	pool, err := bluefi.NewPool(bluefi.Options{
		Mode:      bluefi.RealTime,
		Telemetry: reg,
		Faults:    &plan,
		Retry:     bluefi.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
	}, 2)
	if err != nil {
		return err
	}
	defer pool.Close()
	stream, err := pool.NewAudioStream(bluefi.AudioConfig{
		Device:     bluefi.Device{LAP: 0xb10ef1, UAP: 0x42},
		PacketType: bluefi.DM1,
		SBC:        bluefi.SBCConfig{SampleRateHz: 16000, Blocks: 4, Subbands: 4, Bitpool: 31},
		Degrade:    &bluefi.DegradePolicy{},
		SlotBudget: time.Minute,
	})
	if err != nil {
		return err
	}

	eng := slo.NewEngine(reg)
	for _, spec := range audioSLOSpecs(stream) {
		if spec.Name == sloGateSLO {
			eng.Add(spec)
		}
	}
	var bundles []string
	eng.OnPage(func(ep slo.Episode) {
		bundle, err := rec.Dump(flightDir, reg, "slo-page:"+ep.SLO)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: flight dump: %v\n", err)
			return
		}
		bundles = append(bundles, bundle)
		fmt.Printf("slo: %s paged at tick %d — flight bundle %s\n", ep.SLO, ep.StartTick, bundle)
	})

	// One engine tick per send: deterministic synthetic time, never the
	// wall clock, so the state trajectory replays identically.
	tick := int64(0)
	send := func(phase int) error {
		pcm := make([][]float64, stream.Channels())
		for ch := range pcm {
			pcm[ch] = tonePCM(stream.SamplesPerSend(), phase)
		}
		if _, err := stream.Send(pcm); err != nil {
			return err
		}
		tick++
		eng.Tick(time.Unix(tick, 0).UTC())
		return nil
	}

	// Storm phase: send until the fault budget is spent (bounded).
	done := 0
	for ; done < 400 && pool.InjectedFaults() < int64(plan.MaxInjections); done++ {
		if err := send(done * stream.SamplesPerSend()); err != nil {
			return fmt.Errorf("storm send %d: %w", done, err)
		}
	}
	if pool.InjectedFaults() < int64(plan.MaxInjections) {
		return fmt.Errorf("fault budget not spent after %d sends (%d injected)", done, pool.InjectedFaults())
	}
	stormTicks := tick

	// The page must land within one fast window of the storm: the burn
	// windows trail the governor's transitions, so grant the default
	// fast window (8 ticks) of grace past budget exhaustion.
	const fastWindow = 8
	for i := 0; i < fastWindow && eng.State(sloGateSLO) != slo.Page; i++ {
		if err := send(done * stream.SamplesPerSend()); err != nil {
			return fmt.Errorf("post-storm send %d: %w", done, err)
		}
		done++
	}
	if eng.State(sloGateSLO) != slo.Page {
		return fmt.Errorf("%s is %v one fast window after the storm, want page (snapshot %+v)",
			sloGateSLO, eng.State(sloGateSLO), eng.Snapshot())
	}

	// Recovery phase: clean sends until the SLO walks Page→Warn→OK.
	for i := 0; i < 250 && eng.State(sloGateSLO) != slo.OK; i++ {
		if err := send(done * stream.SamplesPerSend()); err != nil {
			return fmt.Errorf("recovery send %d: %w", done, err)
		}
		done++
	}
	if st := eng.State(sloGateSLO); st != slo.OK {
		return fmt.Errorf("%s stuck at %v after recovery tail (burns: %+v)", sloGateSLO, st, eng.Snapshot())
	}

	episodes := eng.Episodes()
	if len(episodes) != 1 {
		return fmt.Errorf("%d page episodes, want exactly 1 (hysteresis must hold the storm together): %+v",
			len(episodes), episodes)
	}
	ep := episodes[0]
	if ep.Open || ep.StartTick > stormTicks+fastWindow || ep.EndTick <= ep.StartTick {
		return fmt.Errorf("episode %+v does not bracket the storm (budget spent at tick %d)", ep, stormTicks)
	}
	if len(bundles) != 1 {
		return fmt.Errorf("%d flight bundles dumped, want exactly 1", len(bundles))
	}
	var man flight.Manifest
	data, err := os.ReadFile(filepath.Join(bundles[0], "manifest.json"))
	if err != nil {
		return fmt.Errorf("flight bundle invalid: %w", err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("flight manifest invalid: %w", err)
	}
	if man.Reason != "slo-page:"+sloGateSLO || man.Events == 0 {
		return fmt.Errorf("flight manifest %+v: want reason slo-page:%s and recorded events", man, sloGateSLO)
	}

	rep := sloReport{
		Scenario:   "storm",
		Seed:       plan.Seed,
		Ticks:      tick,
		StormTicks: stormTicks,
		Pages:      len(episodes),
		FinalState: eng.State(sloGateSLO).String(),
		Episodes:   episodes,
		Bundle:     bundles[0],
	}
	fmt.Printf("slo/storm: paged tick %d, recovered tick %d (peak burn %.1f), OK after %d ticks total\n",
		ep.StartTick, ep.EndTick, ep.PeakBurn, tick)
	return appendSLOReport(path, rep)
}

// appendSLOReport merges the replay under the snapshot's "sloEpisodes"
// key, leaving every other key untouched.
func appendSLOReport(path string, rep sloReport) error {
	snap := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("existing %s is not JSON: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	prev, _ := snap["sloEpisodes"].([]any)
	snap["sloEpisodes"] = append(prev, rep)
	data, err := json.MarshalIndent(snap, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended SLO replay to %s\n", path)
	return nil
}
