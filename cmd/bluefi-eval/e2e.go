package main

// -e2e: the loopback conformance matrix on the command line. Every
// synthesis mode goes through the public API, the seeded channel model
// (clean, CFO-offset, interferer storm) and back through the scanner;
// the per-channel PDR table prints and a "scannerPDR" snapshot is
// merged into the benchmark JSON (same non-destructive round-trip as
// the fault reports).

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"bluefi"
	"bluefi/internal/bt"
	"bluefi/internal/channel"
	"bluefi/internal/dsp"
	"bluefi/internal/scan"
)

// e2eScenario is one channel condition the matrix runs under.
type e2eScenario struct {
	name  string
	cfo   float64
	storm *channel.Interferer
}

func e2eScenarios() []e2eScenario {
	return []e2eScenario{
		{name: "clean"},
		{name: "offset", cfo: 30e3},
		{name: "storm", storm: &channel.Interferer{PowerDBm: -40, DutyCycle: 0.5, BurstSamples: 4800}},
	}
}

// runE2E sweeps the conformance matrix and appends the scanner PDR
// snapshot to the benchmark JSON at path.
func runE2E(path string, n int) error {
	if n <= 0 {
		n = 20
	}
	syn, err := bluefi.New(bluefi.Options{Chip: bluefi.AR9331, Mode: bluefi.Quality, WiFiChannel: 3})
	if err != nil {
		return err
	}
	ib := bluefi.IBeacon{Major: 0xB1, Minor: 0xF1}
	pkt, err := syn.Beacon(ib.ADStructures(), [6]byte{0xBF, 1, 2, 3, 4, 5}, 38)
	if err != nil {
		return err
	}
	dev := bluefi.Device{LAP: 0x123456, UAP: 0x9A}
	// Slot clocks whiten differently; pick one the synthesis rehearsal
	// cleared, as a real scheduler with slot freedom would (DESIGN.md §10).
	br, brClk, err := rehearsalCleanBR(syn, dev)
	if err != nil {
		return err
	}
	// EDR rides the CP-bypass transport leg (ideal phase trajectory, no
	// PSDU layout): the full-chain DPSK payload does not survive
	// cyclic-prefix insertion, so transport conformance is what the
	// matrix measures. The full chain still detects — e2e_test covers it.
	edrIQ, err := edrTransportIQ(dev)
	if err != nil {
		return err
	}

	type leg struct {
		wave []complex128
		off  float64
		kind scan.Kind
		ch   int
		clk  uint32
	}
	legs := []leg{
		{pkt.Waveform(), pkt.ChannelOffsetHz(), scan.KindBLEAdv, 38, 0},
		{br.Waveform(), br.ChannelOffsetHz(), scan.KindBR, 24, brClk},
		{edrIQ, 4e6, scan.KindEDR, 24, 8},
	}

	snaps := map[string]scan.Snapshot{}
	fmt.Printf("E2E conformance: %d captures per (scenario × leg), seed-deterministic\n", n)
	for _, sc := range e2eScenarios() {
		s := scan.NewScanner(scan.Config{Seed: 77, Device: bt.Device(dev)})
		var caps []scan.Capture
		for _, l := range legs {
			for i := 0; i < n; i++ {
				m := channel.Default(18, 1.5)
				m.Seed = int64(1000 + i)
				m.CFOHz = sc.cfo
				iq, err := m.Apply(l.wave)
				if err != nil {
					return err
				}
				if sc.storm != nil {
					st := *sc.storm
					st.Seed = int64(2000 + i)
					st.AddTo(iq)
				}
				c := scan.Capture{Kind: l.kind, Channel: l.ch, OffsetHz: l.off, IQ: iq, Clk: l.clk}
				if l.kind == scan.KindEDR {
					c.EDRRate = bt.EDR2
				}
				caps = append(caps, c)
			}
		}
		s.SweepParallel(caps)
		snap := s.Snapshot()
		snaps[sc.name] = snap
		fmt.Printf("\nscenario %q:\n", sc.name)
		fmt.Printf("  %-10s %-8s %-9s %-8s %-8s %-8s %s\n", "kind", "channel", "attempts", "decoded", "crcFail", "pdr", "rssi dBm")
		for _, st := range snap.Channels {
			fmt.Printf("  %-10s %-8d %-9d %-8d %-8d %-8.2f %.1f\n",
				st.KindName, st.Channel, st.Attempts, st.Decoded, st.CRCFailures, st.PDR, st.RSSIMeanDBm)
		}
	}

	// Gates: every leg must be perfect on the clean channel (the BLE and
	// BR packets are rehearsal-clean; EDR runs the CP-bypass transport),
	// and the advertising leg must hold ≥80% PDR under the storm.
	for _, kind := range []string{"ble-adv", "br", "edr"} {
		pdr, ok := legPDR(snaps["clean"], kind)
		if !ok || pdr < 1 {
			return fmt.Errorf("clean-channel %s PDR %.2f below 1.00", kind, pdr)
		}
	}
	for _, check := range []struct {
		scenario string
		min      float64
	}{{"offset", 0.9}, {"storm", 0.8}} {
		pdr, ok := legPDR(snaps[check.scenario], "ble-adv")
		if !ok {
			return fmt.Errorf("scenario %q has no ble-adv cell", check.scenario)
		}
		if pdr < check.min {
			return fmt.Errorf("scenario %q: advertising PDR %.2f below the %.2f floor", check.scenario, pdr, check.min)
		}
	}
	return appendScannerPDR(path, snaps)
}

// rehearsalCleanBR synthesizes a DM1 packet on successive slot clocks
// until the rehearsal reports zero mismatches.
func rehearsalCleanBR(syn *bluefi.Synthesizer, dev bluefi.Device) (*bluefi.Packet, uint32, error) {
	var last *bluefi.Packet
	var lastClk uint32
	for clk := uint32(0); clk < 64; clk += 4 {
		pkt, err := syn.BRPacket(dev, &bluefi.BasebandPacket{Type: bluefi.DM1, LTAddr: 1, Payload: []byte("bluefi e2e"), Clock: clk}, 24)
		if err != nil {
			return nil, 0, err
		}
		if pkt.RehearsalMismatches == 0 {
			return pkt, clk, nil
		}
		last, lastClk = pkt, clk
	}
	fmt.Printf("note: no rehearsal-clean BR slot in 16 tries; using clk %d (%d mismatches)\n", lastClk, last.RehearsalMismatches)
	return last, lastClk, nil
}

// edrTransportIQ builds the EDR CP-bypass waveform: the ideal phase
// trajectory at 20 Msps mixed to 2426 MHz under WiFi channel 3.
func edrTransportIQ(dev bluefi.Device) ([]complex128, error) {
	pkt := &bt.EDRPacket{Type: bt.EDR2DH1, LTAddr: 1, Payload: []byte("edr payload"), Clock: 8}
	theta, _, err := pkt.AirPhase(bt.Device(dev), 20)
	if err != nil {
		return nil, err
	}
	iq := dsp.PhaseToIQ(theta, 1)
	dsp.Mix(iq, 4e6, 20e6, 0)
	return iq, nil
}

func legPDR(snap scan.Snapshot, kind string) (float64, bool) {
	for _, st := range snap.Channels {
		if st.KindName == kind {
			return st.PDR, true
		}
	}
	return 0, false
}

// appendScannerPDR merges the scanner snapshots into the benchmark JSON
// under "scannerPDR", leaving every other key untouched.
func appendScannerPDR(path string, snaps map[string]scan.Snapshot) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not JSON: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	doc["scannerPDR"] = snaps
	data, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nappended scannerPDR snapshot to %s\n", path)
	return nil
}
