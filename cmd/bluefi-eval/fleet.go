package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"

	"bluefi"
	"bluefi/internal/eval"
	"bluefi/internal/fleet"
)

// runFleetServe runs the beacon-CDN daemon inside bluefi-eval: the
// /fleet control plane (bulk register/update/expire, stats) next to the
// telemetry endpoints, so the bluefi_fleet_* rollups are scrapeable
// while clients drive the fleet. cmd/bluefi-fleet is the standalone
// equivalent.
func runFleetServe(addr string, aps, workers int) error {
	reg := bluefi.NewTelemetry()
	f, err := fleet.New(fleet.Config{
		APs:          aps,
		ShardWorkers: workers,
		Synth:        bluefi.Options{Mode: bluefi.RealTime, Telemetry: reg},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bluefi-eval: fleet of %d APs on http://%s/fleet/register|update|expire|stats, telemetry on /metrics (Ctrl-C to stop)\n",
		aps, ln.Addr())
	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	mux.Handle("/fleet/", fleet.Handler(f))
	return http.Serve(ln, mux)
}

// runFleetSoak runs the capacity soak, enforces the CI gates and merges
// the capacity snapshot into the benchmark JSON.
func runFleetSoak(path string, cfg eval.FleetSoakConfig) error {
	fmt.Printf("fleet soak: %d beacons, %d unique payloads, %d APs, seed %d\n",
		cfg.Beacons, cfg.UniquePayloads, cfg.APs, cfg.Seed)
	res, err := eval.FleetSoak(cfg)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatFleetSoak(res))

	if len(res.Ramp) == 0 {
		return errors.New("no capacity points recorded")
	}
	last := res.Ramp[len(res.Ramp)-1]
	if last.Failures > 0 {
		return fmt.Errorf("%d registrations failed at the final level", last.Failures)
	}
	if last.Beacons < cfg.Beacons {
		return fmt.Errorf("sustained %d beacons, want %d", last.Beacons, cfg.Beacons)
	}
	if last.P99LatencySeconds <= 0 {
		return errors.New("no p99 beacon-slot latency recorded")
	}
	if res.SteadyStateHitRate < 0.90 {
		return fmt.Errorf("steady-state cache hit rate %.4f under the 0.90 floor", res.SteadyStateHitRate)
	}
	return appendFleetCapacity(path, res)
}

// appendFleetCapacity merges the soak result into the benchmark JSON
// under "fleetCapacity", leaving every other key untouched.
func appendFleetCapacity(path string, res *eval.FleetSoakResult) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not JSON: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	doc["fleetCapacity"] = res
	data, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("fleet capacity snapshot → %s\n", path)
	return nil
}
