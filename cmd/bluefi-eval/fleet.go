package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"bluefi"
	"bluefi/internal/eval"
	"bluefi/internal/fleet"
	"bluefi/internal/obs/flight"
	"bluefi/internal/obs/slo"
)

// runFleetServe runs the beacon-CDN daemon inside bluefi-eval: the
// /fleet control plane (bulk register/update/expire, stats) next to the
// telemetry endpoints, so the bluefi_fleet_* rollups are scrapeable
// while clients drive the fleet, plus the fleet's SLO burn rates on
// /debug/slo and the flight recorder on /debug/flight.
// cmd/bluefi-fleet is the standalone equivalent.
func runFleetServe(addr string, aps, workers int, flightDir string) error {
	reg := bluefi.NewTelemetry()
	f, err := fleet.New(fleet.Config{
		APs:          aps,
		ShardWorkers: workers,
		Synth:        bluefi.Options{Mode: bluefi.RealTime, Telemetry: reg},
	})
	if err != nil {
		return err
	}
	rec := flight.New(reg, 0)
	rec.Attach(reg)
	eng := slo.NewEngine(reg)
	for _, spec := range f.SLOSpecs() {
		eng.Add(spec)
	}
	eng.OnPage(func(ep slo.Episode) {
		bundle, err := rec.Dump(flightDir, reg, "slo-page:"+ep.SLO)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-eval: flight dump: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "bluefi-eval: SLO %s paged (peak burn %.1f) — flight bundle %s\n",
			ep.SLO, ep.PeakBurn, bundle)
	})
	ctx, stopSLO := context.WithCancel(context.Background())
	defer stopSLO()
	eng.Start(ctx, time.Second)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bluefi-eval: fleet of %d APs on http://%s/fleet/register|update|expire|stats, telemetry on /metrics (Ctrl-C to stop)\n",
		aps, ln.Addr())
	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	mux.Handle("/fleet/", fleet.Handler(f))
	mux.Handle("/debug/slo", eng.Handler())
	mux.Handle("/debug/flight/", http.StripPrefix("/debug/flight", rec.Handler(reg, flightDir)))
	return http.Serve(ln, mux)
}

// runFleetSoak runs the capacity soak, enforces the CI gates and merges
// the capacity snapshot into the benchmark JSON.
func runFleetSoak(path string, cfg eval.FleetSoakConfig) error {
	fmt.Printf("fleet soak: %d beacons, %d unique payloads, %d APs, seed %d\n",
		cfg.Beacons, cfg.UniquePayloads, cfg.APs, cfg.Seed)
	res, err := eval.FleetSoak(cfg)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatFleetSoak(res))

	if len(res.Ramp) == 0 {
		return errors.New("no capacity points recorded")
	}
	last := res.Ramp[len(res.Ramp)-1]
	if last.Failures > 0 {
		return fmt.Errorf("%d registrations failed at the final level", last.Failures)
	}
	if last.Beacons < cfg.Beacons {
		return fmt.Errorf("sustained %d beacons, want %d", last.Beacons, cfg.Beacons)
	}
	if last.P99LatencySeconds <= 0 {
		return errors.New("no p99 beacon-slot latency recorded")
	}
	if res.SteadyStateHitRate < 0.90 {
		return fmt.Errorf("steady-state cache hit rate %.4f under the 0.90 floor", res.SteadyStateHitRate)
	}
	// Sketch gates: the O(k) summaries must agree with the exact ramp
	// figures. The quantile sketch promises 1% relative error against
	// any true sample; churn-phase admissions shift the sketched p99
	// slightly off the ramp percentile, so gate at a loose 25% — it
	// catches a broken sketch, not honest drift.
	sk := res.Sketches
	if sk.SlotLatency.N == 0 {
		return errors.New("slot-latency sketch recorded no samples")
	}
	if p99 := sk.SlotLatency.P99; p99 <= 0 ||
		p99 < last.P99LatencySeconds*0.75 || p99 > last.MaxLatencySeconds*1.25 {
		return fmt.Errorf("sketched p99 %.6fs implausible against exact p99 %.6fs / max %.6fs",
			p99, last.P99LatencySeconds, last.MaxLatencySeconds)
	}
	if len(sk.HotKeys) == 0 || len(sk.HotShards) == 0 {
		return errors.New("heavy-hitter sketches empty after the soak")
	}
	return appendFleetCapacity(path, res)
}

// appendFleetCapacity merges the soak result into the benchmark JSON
// under "fleetCapacity", leaving every other key untouched.
func appendFleetCapacity(path string, res *eval.FleetSoakResult) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not JSON: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	doc["fleetCapacity"] = res
	data, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("fleet capacity snapshot → %s\n", path)
	return nil
}
