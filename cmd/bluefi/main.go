// Command bluefi converts Bluetooth packets into 802.11n PSDUs on the
// command line — the tool a driver integration would call (paper §3: the
// generation starts in user space and the PSDU goes to the driver).
//
//	bluefi beacon -uuid 0102...0f10 -major 1 -minor 2 [-ble-channel 38]
//	bluefi beacon -eddystone-url https://example.com
//	bluefi br -payload 68656c6c6f -type DM1 -lap 123456 -uap 9a -clock 4 -bt-channel 24
//	bluefi plan -freq 2426
//
// Output is the PSDU as hex plus the transmit parameters (MCS, WiFi
// channel, short GI, scrambler seed policy).
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"bluefi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "beacon":
		err = beaconCmd(os.Args[2:])
	case "br":
		err = brCmd(os.Args[2:])
	case "plan":
		err = planCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bluefi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bluefi <beacon|br|plan> [flags]
  beacon  synthesize a BLE advertising packet (iBeacon/Eddystone/raw AD)
  br      synthesize a classic BR/EDR baseband packet
  plan    list WiFi channels able to carry a Bluetooth frequency`)
}

func chipFlag(fs *flag.FlagSet) *string {
	return fs.String("chip", "ar9331", "target chip: ar9331, rtl8811au, generic")
}

func telemetryFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("telemetry", false, "dump a JSON telemetry snapshot (stage latencies, FEC counters) to stderr after synthesis")
}

// dumpTelemetry writes the registry snapshot to stderr so the PSDU on
// stdout stays pipeable.
func dumpTelemetry(reg *bluefi.Telemetry) error {
	if reg == nil {
		return nil
	}
	return reg.WriteJSON(os.Stderr)
}

func parseChip(name string) (bluefi.ChipModel, error) {
	switch strings.ToLower(name) {
	case "ar9331":
		return bluefi.AR9331, nil
	case "rtl8811au":
		return bluefi.RTL8811AU, nil
	case "generic":
		return bluefi.Generic80211n, nil
	}
	return 0, fmt.Errorf("unknown chip %q", name)
}

func printPacket(pkt *bluefi.Packet) {
	fmt.Printf("psdu (%d bytes):\n", len(pkt.PSDU))
	dump := hex.EncodeToString(pkt.PSDU)
	for i := 0; i < len(dump); i += 64 {
		end := i + 64
		if end > len(dump) {
			end = len(dump)
		}
		fmt.Printf("  %s\n", dump[i:end])
	}
	fmt.Printf("transmit: MCS %d, short GI, WiFi channel %d (Bluetooth %.0f MHz)\n",
		pkt.MCS, pkt.WiFiChannel, pkt.FrequencyMHz)
	fmt.Printf("airtime: %.0f µs   in-band phase RMSE: %.3f rad\n",
		pkt.AirtimeSeconds*1e6, pkt.Fidelity)
}

func beaconCmd(args []string) error {
	fs := flag.NewFlagSet("beacon", flag.ExitOnError)
	chip := chipFlag(fs)
	wifiCh := fs.Int("wifi-channel", 3, "2.4 GHz WiFi channel (1-13)")
	bleCh := fs.Int("ble-channel", 38, "advertising channel: 37, 38 or 39")
	addrHex := fs.String("addr", "b10ef1000001", "6-byte advertiser address (hex)")
	uuid := fs.String("uuid", "", "iBeacon UUID (32 hex chars)")
	major := fs.Uint("major", 0, "iBeacon major")
	minor := fs.Uint("minor", 0, "iBeacon minor")
	power := fs.Int("power", -59, "iBeacon measured power at 1 m (dBm)")
	urlStr := fs.String("eddystone-url", "", "Eddystone URL (https://... )")
	adHex := fs.String("ad", "", "raw AD structures (hex, overrides other payload flags)")
	tele := telemetryFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cm, err := parseChip(*chip)
	if err != nil {
		return err
	}
	var addr [6]byte
	ab, err := hex.DecodeString(*addrHex)
	if err != nil || len(ab) != 6 {
		return fmt.Errorf("-addr must be 12 hex chars")
	}
	copy(addr[:], ab)

	var ad []byte
	switch {
	case *adHex != "":
		ad, err = hex.DecodeString(*adHex)
		if err != nil {
			return fmt.Errorf("-ad: %w", err)
		}
	case *urlStr != "":
		scheme, rest, err := splitURL(*urlStr)
		if err != nil {
			return err
		}
		e := bluefi.EddystoneURL{TxPower: -20, Scheme: scheme, URL: rest}
		ad, err = e.ADStructures()
		if err != nil {
			return err
		}
	default:
		b := bluefi.IBeacon{Major: uint16(*major), Minor: uint16(*minor), MeasuredPower: int8(*power)}
		if *uuid != "" {
			ub, err := hex.DecodeString(*uuid)
			if err != nil || len(ub) != 16 {
				return fmt.Errorf("-uuid must be 32 hex chars")
			}
			copy(b.UUID[:], ub)
		}
		ad = b.ADStructures()
	}

	var reg *bluefi.Telemetry
	if *tele {
		reg = bluefi.NewTelemetry()
	}
	syn, err := bluefi.New(bluefi.Options{Chip: cm, WiFiChannel: *wifiCh, Telemetry: reg})
	if err != nil {
		return err
	}
	pkt, err := syn.Beacon(ad, addr, *bleCh)
	if err != nil {
		return err
	}
	printPacket(pkt)
	return dumpTelemetry(reg)
}

func splitURL(u string) (byte, string, error) {
	switch {
	case strings.HasPrefix(u, "https://www."):
		return 1, strings.TrimPrefix(u, "https://www."), nil
	case strings.HasPrefix(u, "http://www."):
		return 0, strings.TrimPrefix(u, "http://www."), nil
	case strings.HasPrefix(u, "https://"):
		return 3, strings.TrimPrefix(u, "https://"), nil
	case strings.HasPrefix(u, "http://"):
		return 2, strings.TrimPrefix(u, "http://"), nil
	}
	return 0, "", fmt.Errorf("URL must start with http(s)://")
}

func brCmd(args []string) error {
	fs := flag.NewFlagSet("br", flag.ExitOnError)
	chip := chipFlag(fs)
	wifiCh := fs.Int("wifi-channel", 3, "2.4 GHz WiFi channel (1-13)")
	btCh := fs.Int("bt-channel", 24, "Bluetooth channel index (0-78)")
	typ := fs.String("type", "DM1", "packet type: DM1 DH1 DM3 DH3 DM5 DH5")
	payloadHex := fs.String("payload", "", "payload bytes (hex)")
	lap := fs.Uint("lap", 0x123456, "device LAP (24 bits)")
	uap := fs.Uint("uap", 0x9A, "device UAP (8 bits)")
	clock := fs.Uint("clock", 0, "Bluetooth clock at transmission (whitening)")
	realtime := fs.Bool("realtime", true, "use the O(T) real-time FEC inverter")
	tele := telemetryFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cm, err := parseChip(*chip)
	if err != nil {
		return err
	}
	types := map[string]bluefi.PacketType{
		"DM1": bluefi.DM1, "DH1": bluefi.DH1, "DM3": bluefi.DM3,
		"DH3": bluefi.DH3, "DM5": bluefi.DM5, "DH5": bluefi.DH5,
	}
	pt, ok := types[strings.ToUpper(*typ)]
	if !ok {
		return fmt.Errorf("unknown packet type %q", *typ)
	}
	payload, err := hex.DecodeString(*payloadHex)
	if err != nil {
		return fmt.Errorf("-payload: %w", err)
	}
	mode := bluefi.Quality
	if *realtime {
		mode = bluefi.RealTime
	}
	var reg *bluefi.Telemetry
	if *tele {
		reg = bluefi.NewTelemetry()
	}
	syn, err := bluefi.New(bluefi.Options{Chip: cm, WiFiChannel: *wifiCh, Mode: mode, Telemetry: reg})
	if err != nil {
		return err
	}
	pkt, err := syn.BRPacket(
		bluefi.Device{LAP: uint32(*lap), UAP: byte(*uap)},
		&bluefi.BasebandPacket{Type: pt, LTAddr: 1, Payload: payload, Clock: uint32(*clock)},
		*btCh,
	)
	if err != nil {
		return err
	}
	printPacket(pkt)
	return dumpTelemetry(reg)
}

func planCmd(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	freq := fs.Float64("freq", 2426, "Bluetooth carrier frequency (MHz)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plans := bluefi.Plan(*freq)
	if len(plans) == 0 {
		return fmt.Errorf("no 2.4 GHz WiFi channel covers %g MHz", *freq)
	}
	fmt.Printf("WiFi channels able to carry %g MHz (best first):\n", *freq)
	for _, p := range plans {
		fmt.Printf("  channel %2d (%g MHz): subcarrier %+6.1f, nearest pilot %.2f MHz, nearest null %.2f MHz\n",
			p.WiFiChannel, p.WiFiCenterMHz, p.Subcarrier, p.PilotDistanceMHz, p.NullDistanceMHz)
	}
	return nil
}
