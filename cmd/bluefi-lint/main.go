// bluefi-lint is the repo's multichecker: four BlueFi-specific
// analyzers (determinism, poolbalance, lockcheck, scratchalias) plus
// reimplementations of the vet passes the lint tier needs (copylocks,
// loopclosure, atomicassign, nilness), in one binary invocation.
//
// Usage:
//
//	bluefi-lint [-run regexp] [-list] [packages...]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 1 when any diagnostic is reported, so `make lint` gates CI.
//
// The framework is self-contained (no golang.org/x/tools dependency):
// see internal/analysis/framework. Invariant annotations understood by
// the analyzers are documented in DESIGN.md §7.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"bluefi/internal/analysis/determinism"
	"bluefi/internal/analysis/framework"
	"bluefi/internal/analysis/lockcheck"
	"bluefi/internal/analysis/poolbalance"
	"bluefi/internal/analysis/scratchalias"
	"bluefi/internal/analysis/stdchecks"
)

var all = []*framework.Analyzer{
	determinism.Analyzer,
	poolbalance.Analyzer,
	lockcheck.Analyzer,
	scratchalias.Analyzer,
	stdchecks.Copylocks,
	stdchecks.Loopclosure,
	stdchecks.AtomicAssign,
	stdchecks.Nilness,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "only run analyzers whose name matches this regexp")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-lint: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
		analyzers = nil
		for _, a := range all {
			if re.MatchString(a.Name) {
				analyzers = append(analyzers, a)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bluefi-lint: %v\n", err)
		os.Exit(2)
	}
	n, err := framework.Lint(os.Stdout, cwd, analyzers, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bluefi-lint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "bluefi-lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
