// bluefi-lint is the repo's multichecker: seven BlueFi-specific
// analyzers (determinism, poolbalance, lockcheck, scratchalias,
// alloccheck, leakcheck, obsnames) plus reimplementations of the vet
// passes the lint tier needs (copylocks, loopclosure, atomicassign,
// nilness), in one binary invocation.
//
// Usage:
//
//	bluefi-lint [flags] [packages...]
//
//	-list                 list analyzers and exit
//	-run regexp           only run analyzers whose name matches
//	-json                 emit diagnostics as a JSON array (the
//	                      lint_baseline.json interchange shape)
//	-baseline file        filter out findings recorded in the baseline;
//	                      the exit status then reflects NEW findings only
//	-write-baseline file  write all current findings to the baseline
//	                      file and exit 0
//	-cache                reuse per-package results from .lintcache/
//	                      when sources, deps and the lint binary are
//	                      unchanged
//	-escape               corroborate alloccheck findings against the
//	                      compiler's escape analysis (-gcflags=-m):
//	                      sites the compiler proves non-escaping are
//	                      downgraded; implies -cache off
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 1 when any (new) diagnostic is reported, so `make lint`
// gates CI.
//
// The framework is self-contained (no golang.org/x/tools dependency):
// see internal/analysis/framework. Invariant annotations understood by
// the analyzers are documented in DESIGN.md §7 and §11.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"

	"bluefi/internal/analysis/alloccheck"
	"bluefi/internal/analysis/determinism"
	"bluefi/internal/analysis/framework"
	"bluefi/internal/analysis/leakcheck"
	"bluefi/internal/analysis/lockcheck"
	"bluefi/internal/analysis/obsnames"
	"bluefi/internal/analysis/poolbalance"
	"bluefi/internal/analysis/scratchalias"
	"bluefi/internal/analysis/stdchecks"
)

var all = []*framework.Analyzer{
	determinism.Analyzer,
	poolbalance.Analyzer,
	lockcheck.Analyzer,
	scratchalias.Analyzer,
	alloccheck.Analyzer,
	leakcheck.Analyzer,
	obsnames.Analyzer,
	stdchecks.Copylocks,
	stdchecks.Loopclosure,
	stdchecks.AtomicAssign,
	stdchecks.Nilness,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "only run analyzers whose name matches this regexp")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	baseline := flag.String("baseline", "", "filter findings recorded in this baseline file; exit status reflects new findings only")
	writeBaseline := flag.String("write-baseline", "", "write all current findings to this baseline file and exit 0")
	cache := flag.Bool("cache", false, "reuse per-package results from .lintcache/ when inputs are unchanged")
	escape := flag.Bool("escape", false, "downgrade alloccheck findings the compiler's escape analysis (-gcflags=-m) proves non-escaping")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-lint: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
		analyzers = nil
		for _, a := range all {
			if re.MatchString(a.Name) {
				analyzers = append(analyzers, a)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bluefi-lint: %v\n", err)
		os.Exit(2)
	}

	opts := framework.Options{JSON: *jsonOut, Baseline: *baseline}
	if *cache && !*escape {
		loader, err := framework.NewLoader(cwd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-lint: %v\n", err)
			os.Exit(2)
		}
		opts.CacheDir = filepath.Join(loader.ModuleDir, ".lintcache")
	}
	if *escape {
		hints, err := loadEscapeHints(cwd, patterns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-lint: escape analysis: %v\n", err)
			os.Exit(2)
		}
		alloccheck.SetEscapeHints(hints)
	}

	out := os.Stdout
	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluefi-lint: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
		opts.JSON = true
		opts.Baseline = ""
	}

	n, err := framework.LintOpts(out, cwd, analyzers, patterns, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bluefi-lint: %v\n", err)
		os.Exit(2)
	}
	if *writeBaseline != "" {
		fmt.Fprintf(os.Stderr, "bluefi-lint: wrote %d finding(s) to %s\n", n, *writeBaseline)
		return
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "bluefi-lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// escapeNoteRe matches one compiler escape note. go build prints file
// positions relative to the directory it runs in (the module root
// here).
var escapeNoteRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: .* does not escape$`)

// loadEscapeHints compiles the module with -gcflags=-m and collects the
// "does not escape" notes per absolute file and line. The build output
// itself is advisory: a failing build surfaces through the loader with
// a better message, so only the notes are harvested here.
func loadEscapeHints(dir string, patterns []string) (map[string]map[int]bool, error) {
	loader, err := framework.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = loader.ModuleDir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	_ = cmd.Run()
	hints := make(map[string]map[int]bool)
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := escapeNoteRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(loader.ModuleDir, file)
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		if hints[file] == nil {
			hints[file] = make(map[int]bool)
		}
		hints[file][line] = true
	}
	return hints, nil
}
