package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bluefi/internal/analysis/framework"
)

// TestLintFindsSeededViolation builds a scratch module containing a
// determinism violation and requires the multichecker to report it —
// the finding count that makes the bluefi-lint binary exit non-zero.
func TestLintFindsSeededViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export on a scratch module; skipped in -short")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratchlint\n\ngo 1.22\n",
		"bad.go": `package scratchlint

import "math/rand"

func Roll() int { return rand.Intn(6) }
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out strings.Builder
	n, err := framework.Lint(&out, dir, all, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected the seeded rand.Intn violation to be reported")
	}
	if !strings.Contains(out.String(), "process-seeded global source") {
		t.Errorf("unexpected diagnostic output:\n%s", out.String())
	}
}

// TestRepoIsLintClean runs the full multichecker over the module — the
// same invocation as `make lint` — and requires zero findings. Any new
// nondeterminism, pool imbalance, lock-discipline breach or scratch
// alias in the repo fails this test before it reaches CI's lint job.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint compiles the module; skipped in -short")
	}
	moduleDir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(moduleDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(moduleDir)
		if parent == moduleDir {
			t.Fatal("no go.mod above test working directory")
		}
		moduleDir = parent
	}
	var out strings.Builder
	n, err := framework.Lint(&out, moduleDir, all, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("bluefi-lint found %d issue(s) in the repo:\n%s", n, out.String())
	}
}
