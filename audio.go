package bluefi

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"bluefi/internal/a2dp"
	"bluefi/internal/bt"
	"bluefi/internal/core"
	"bluefi/internal/obs"
	"bluefi/internal/sbc"
)

// Audio streaming (paper §4.7): SBC-encode PCM, wrap it in AVDTP/L2CAP,
// schedule baseband packets along the AFH-restricted hop sequence inside
// the WiFi channel, and synthesize each one as a WiFi frame stamped with
// its slot clock.

// AudioConfig parameterizes an audio stream.
type AudioConfig struct {
	// Device provides the link's access code and CRC context.
	Device Device
	// PacketType carries the media; DM types add the baseband 2/3 FEC
	// (default DM5, the paper's 5-slot shape).
	PacketType PacketType
	// BestChannels restricts audio to the N best-planned Bluetooth
	// channels in the WiFi channel (default 3, as in the paper).
	BestChannels int
	// SBC selects the codec configuration (default: 44.1 kHz stereo,
	// 8 subbands, 16 blocks, bitpool 35).
	SBC SBCConfig
	// FramesPerPacket overrides how many SBC frames ride in one media
	// packet (0 = fill the baseband payload). Small values shorten the
	// on-air packets — the §4.7 PER/throughput trade-off.
	FramesPerPacket int
}

// SBCConfig mirrors the SBC codec parameters.
type SBCConfig struct {
	SampleRateHz int // 16000, 32000, 44100 or 48000
	Blocks       int // 4, 8, 12 or 16
	Stereo       bool
	Subbands     int // 4 or 8
	Bitpool      int // 2..250
}

func (c SBCConfig) inner() (sbc.Config, error) {
	out := sbc.Config{Blocks: c.Blocks, Subbands: c.Subbands, Bitpool: c.Bitpool, Alloc: sbc.Loudness}
	switch c.SampleRateHz {
	case 16000:
		out.Freq = sbc.Freq16k
	case 32000:
		out.Freq = sbc.Freq32k
	case 44100:
		out.Freq = sbc.Freq44k
	case 48000:
		out.Freq = sbc.Freq48k
	default:
		return out, fmt.Errorf("bluefi: unsupported sample rate %d", c.SampleRateHz)
	}
	if c.Stereo {
		out.Mode = sbc.Stereo
	} else {
		out.Mode = sbc.Mono
	}
	return out, out.Validate()
}

// AudioStream is a live A2DP session over BlueFi. Streams opened from a
// Pool synthesize the segments of each Send concurrently across the
// pool's workers; the rehearsal-gated re-slotting stays correct because
// the scheduler hands out slots atomically.
type AudioStream struct {
	syn    *Synthesizer
	pool   *Pool // nil for single-synthesizer streams
	sched  *a2dp.Scheduler
	enc    *sbc.Encoder
	sbcCfg sbc.Config
	dev    Device
	frames int // SBC frames per media packet

	// slotBudget is the real-time synthesis deadline per segment: the
	// slots the packet occupies (rounded up to the even slot the master
	// resumes on) × 625 µs — a DM1 must synthesize within its 1.25 ms
	// slot pair (§4.7). met is nil without telemetry; obsCtx carries the
	// registry for per-segment spans.
	slotBudget time.Duration
	met        *audioMetrics
	obsCtx     context.Context
}

// audioMetrics holds the audio path's telemetry handles; nil disables
// them at one branch per record.
type audioMetrics struct {
	slack *obs.Histogram
	late  *obs.Counter
}

func newAudioMetrics(r *obs.Registry) *audioMetrics {
	if r == nil {
		return nil
	}
	return &audioMetrics{
		// ±10 ms around the deadline in 1.25 ms slot-pair steps.
		slack: r.Histogram("bluefi_audio_deadline_slack_seconds",
			"slot budget minus segment synthesis time (negative = deadline missed)",
			obs.LinearBuckets(-10e-3, 1.25e-3, 17)),
		late: r.Counter("bluefi_audio_frames_late_total",
			"segments whose synthesis exceeded the slot budget"),
	}
}

func (m *audioMetrics) observeSegment(slack time.Duration) {
	if m == nil {
		return
	}
	m.slack.Observe(slack.Seconds())
	if slack < 0 {
		m.late.Inc()
	}
}

// AudioTransmission is one baseband packet of the stream, synthesized
// and ready for its time slot.
type AudioTransmission struct {
	Packet *Packet
	// Clock is the Bluetooth clock of the packet's slot; release the
	// frame at exactly that instant (the paper uses a high-resolution
	// kernel timer for this).
	Clock uint32
	// BTChannel is the AFH-mapped Bluetooth channel of the slot.
	BTChannel int
}

// NewAudioStream opens a stream on the synthesizer's WiFi channel.
func (s *Synthesizer) NewAudioStream(cfg AudioConfig) (*AudioStream, error) {
	if cfg.PacketType == 0 {
		cfg.PacketType = DM5
	}
	if cfg.BestChannels == 0 {
		cfg.BestChannels = 3
	}
	if cfg.SBC == (SBCConfig{}) {
		cfg.SBC = SBCConfig{SampleRateHz: 44100, Blocks: 16, Stereo: true, Subbands: 8, Bitpool: 35}
	}
	pt, err := cfg.PacketType.inner()
	if err != nil {
		return nil, err
	}
	sbcCfg, err := cfg.SBC.inner()
	if err != nil {
		return nil, err
	}
	center := 2407 + 5*float64(s.opts.WiFiChannel)
	best, err := bestChannels(s.opts.WiFiChannel, center, cfg.BestChannels)
	if err != nil {
		return nil, err
	}
	sched, err := a2dp.NewScheduler(a2dp.StreamConfig{
		Device:        bt.Device(cfg.Device),
		WiFiCenterMHz: center,
		PacketType:    pt,
		BestChannels:  best,
		Telemetry:     s.opts.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	enc, err := sbc.NewEncoder(sbcCfg)
	if err != nil {
		return nil, err
	}
	frames := cfg.FramesPerPacket
	if frames <= 0 {
		frames = a2dp.FramesPerPacket(pt, sbcCfg)
	}
	if frames < 1 {
		frames = 1 // L2CAP segmentation spreads it over several packets
	}
	adv := pt.Slots()
	if adv%2 == 1 {
		adv++
	}
	return &AudioStream{
		syn: s, sched: sched, enc: enc, sbcCfg: sbcCfg, dev: cfg.Device, frames: frames,
		slotBudget: time.Duration(adv) * 625 * time.Microsecond,
		met:        newAudioMetrics(s.opts.Telemetry),
		obsCtx:     obs.WithRegistry(context.Background(), s.opts.Telemetry),
	}, nil
}

// SamplesPerSend returns the PCM samples per channel one Send consumes.
func (a *AudioStream) SamplesPerSend() int { return a.frames * a.sbcCfg.SamplesPerFrame() }

// Channels returns the PCM channel count the stream expects.
func (a *AudioStream) Channels() int { return a.sbcCfg.Mode.Channels() }

// Send encodes one media packet's worth of PCM (pcm[channel][sample],
// exactly SamplesPerSend() samples per channel) and returns the
// synthesized baseband transmissions — one per L2CAP segment.
func (a *AudioStream) Send(pcm [][]float64) ([]*AudioTransmission, error) {
	if len(pcm) != a.Channels() {
		return nil, fmt.Errorf("bluefi: %d PCM channels, want %d", len(pcm), a.Channels())
	}
	spf := a.sbcCfg.SamplesPerFrame()
	frames := make([][]byte, a.frames)
	for f := range frames {
		in := make([][]float64, len(pcm))
		for ch := range pcm {
			if len(pcm[ch]) != a.SamplesPerSend() {
				return nil, fmt.Errorf("bluefi: channel %d has %d samples, want %d", ch, len(pcm[ch]), a.SamplesPerSend())
			}
			in[ch] = pcm[ch][f*spf : (f+1)*spf]
		}
		fr, err := a.enc.Encode(in)
		if err != nil {
			return nil, err
		}
		frames[f] = fr
	}
	scheduled, err := a.sched.ScheduleMedia(frames, uint32(a.SamplesPerSend()))
	if err != nil {
		return nil, err
	}
	if a.pool != nil {
		// Segments are independent synthesis jobs; fan them out across
		// the pool's workers. Results keep segment order.
		out := make([]*AudioTransmission, len(scheduled))
		errs := make([]error, len(scheduled))
		var wg sync.WaitGroup
		for i, sp := range scheduled {
			i, sp := i, sp
			wg.Add(1)
			a.pool.met.enqueued()
			a.pool.jobs <- func(s *Synthesizer) {
				defer wg.Done()
				out[i], errs[i] = a.synthesizeScheduled(s, sp)
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	out := make([]*AudioTransmission, 0, len(scheduled))
	for _, sp := range scheduled {
		tx, err := a.synthesizeScheduled(a.syn, sp)
		if err != nil {
			return nil, err
		}
		out = append(out, tx)
	}
	return out, nil
}

// synthesizeScheduled synthesizes one scheduled segment on the given
// synthesizer with rehearsal-gated transmission: when synthesis predicts
// more bit errors than the packet's FEC can absorb, move to the next slot
// — its clock re-whitens the payload into a fresh waveform.
func (a *AudioStream) synthesizeScheduled(syn *Synthesizer, sp *a2dp.ScheduledPacket) (*AudioTransmission, error) {
	_, span := obs.StartSpan(a.obsCtx, "audio.segment")
	var res *core.Result
	var spent core.Timings // across re-slot attempts; reported on the winner
	for attempt := 0; ; attempt++ {
		air, err := sp.Packet.AirBits(bt.Device(a.dev))
		if err != nil {
			span.End()
			return nil, err
		}
		res, err = syn.br.Synthesize(air, sp.ChannelMHz)
		if err != nil {
			span.End()
			return nil, err
		}
		spent.IQGen += res.Timings.IQGen
		spent.FFTQAM += res.Timings.FFTQAM
		spent.FEC += res.Timings.FEC
		spent.Scramble += res.Timings.Scramble
		if res.RehearsalMismatches <= 4 || attempt >= 3 {
			break
		}
		sp = a.sched.Reslot(sp)
	}
	res.Timings = spent
	// Deadline slack: how much of the slot budget (packet slots × 625 µs)
	// the rehearsal-gated synthesis left unused. Negative means the frame
	// would have missed its slot on a live link.
	a.met.observeSegment(a.slotBudget - span.End())
	pkt, err := syn.wrap(res, -1)
	if err != nil {
		return nil, err
	}
	return &AudioTransmission{Packet: pkt, Clock: uint32(sp.Clock), BTChannel: sp.Channel}, nil
}

// NewAudioStream opens an audio stream whose per-Send segment synthesis
// fans out across the pool's workers — the concurrent variant of
// Synthesizer.NewAudioStream for real-time A2DP workloads.
func (p *Pool) NewAudioStream(cfg AudioConfig) (*AudioStream, error) {
	a, err := p.syns[0].NewAudioStream(cfg)
	if err != nil {
		return nil, err
	}
	a.pool = p
	return a, nil
}

// bestChannels scores the Bluetooth channels inside the WiFi channel by
// pilot/null clearance and returns the top n (paper §4.7: "we select 3
// best channels to transmit audio packets").
func bestChannels(wifiCh int, centerMHz float64, n int) ([]int, error) {
	type scored struct {
		ch    int
		score float64
	}
	var all []scored
	for _, btCh := range bt.ChannelsInWiFiBand(centerMHz, 0.7) {
		plan, err := core.PlanForChannel(bt.ChannelMHz(btCh), wifiCh)
		if err != nil {
			continue
		}
		all = append(all, scored{btCh, plan.Score})
	}
	if len(all) < n {
		return nil, fmt.Errorf("bluefi: only %d usable audio channels in WiFi channel %d", len(all), wifiCh)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	out := make([]int, n)
	for i := range out {
		out[i] = all[i].ch
	}
	sort.Ints(out)
	return out, nil
}
