package bluefi

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bluefi/internal/a2dp"
	"bluefi/internal/bt"
	"bluefi/internal/core"
	"bluefi/internal/faults"
	"bluefi/internal/obs"
	"bluefi/internal/sbc"
)

// Audio streaming (paper §4.7): SBC-encode PCM, wrap it in AVDTP/L2CAP,
// schedule baseband packets along the AFH-restricted hop sequence inside
// the WiFi channel, and synthesize each one as a WiFi frame stamped with
// its slot clock.

// AudioConfig parameterizes an audio stream.
type AudioConfig struct {
	// Device provides the link's access code and CRC context.
	Device Device
	// PacketType carries the media; DM types add the baseband 2/3 FEC
	// (default DM5, the paper's 5-slot shape).
	PacketType PacketType
	// BestChannels restricts audio to the N best-planned Bluetooth
	// channels in the WiFi channel (default 3, as in the paper).
	BestChannels int
	// SBC selects the codec configuration (default: 44.1 kHz stereo,
	// 8 subbands, 16 blocks, bitpool 35).
	SBC SBCConfig
	// FramesPerPacket overrides how many SBC frames ride in one media
	// packet (0 = fill the baseband payload). Small values shorten the
	// on-air packets — the §4.7 PER/throughput trade-off.
	FramesPerPacket int
	// Degrade, when non-nil, arms the graceful-degradation policy (see
	// DegradePolicy and DESIGN.md §9): the stream steps down SBC bitpool
	// and the AFH channel map under deadline misses, synthesis faults and
	// interference, sheds media packets above a shipped-fraction floor
	// while Shedding, and recovers with hysteresis. nil (the default)
	// keeps the fixed-quality behavior, where any synthesis error fails
	// the Send — the deterministic configuration the golden vectors use.
	Degrade *DegradePolicy
	// SlotBudget overrides the per-segment real-time deadline (0 = the
	// packet's slots, rounded up to an even count, × 625 µs). Chaos tests
	// set a generous budget so only injected latency — never host speed —
	// causes deadline misses.
	SlotBudget time.Duration
}

// SBCConfig mirrors the SBC codec parameters.
type SBCConfig struct {
	SampleRateHz int // 16000, 32000, 44100 or 48000
	Blocks       int // 4, 8, 12 or 16
	Stereo       bool
	Subbands     int // 4 or 8
	Bitpool      int // 2..250
}

func (c SBCConfig) inner() (sbc.Config, error) {
	out := sbc.Config{Blocks: c.Blocks, Subbands: c.Subbands, Bitpool: c.Bitpool, Alloc: sbc.Loudness}
	switch c.SampleRateHz {
	case 16000:
		out.Freq = sbc.Freq16k
	case 32000:
		out.Freq = sbc.Freq32k
	case 44100:
		out.Freq = sbc.Freq44k
	case 48000:
		out.Freq = sbc.Freq48k
	default:
		return out, fmt.Errorf("bluefi: unsupported sample rate %d", c.SampleRateHz)
	}
	if c.Stereo {
		out.Mode = sbc.Stereo
	} else {
		out.Mode = sbc.Mono
	}
	return out, out.Validate()
}

// AudioStream is a live A2DP session over BlueFi. Streams opened from a
// Pool synthesize the segments of each Send concurrently across the
// pool's workers; the rehearsal-gated re-slotting stays correct because
// the scheduler hands out slots atomically.
type AudioStream struct {
	syn    *Synthesizer
	pool   *Pool // nil for single-synthesizer streams
	sched  *a2dp.Scheduler
	enc    *sbc.Encoder
	sbcCfg sbc.Config
	dev    Device
	frames int // SBC frames per media packet

	// Degradation state (gov nil without AudioConfig.Degrade). ranked
	// holds every usable Bluetooth channel best-first, so the governor's
	// BestChannels target indexes a prefix; dropNext carries a Shedding
	// drop decision to the next Send.
	gov         *a2dp.Governor
	inj         *faults.Injector // nil without Options.Faults
	ranked      []int
	curBitpool  int
	curChannels int
	dropNext    bool
	segSlots    int // slots one segment occupies (even-rounded)

	// slotBudget is the real-time synthesis deadline per segment: the
	// slots the packet occupies (rounded up to the even slot the master
	// resumes on) × 625 µs — a DM1 must synthesize within its 1.25 ms
	// slot pair (§4.7). met is nil without telemetry; obsCtx carries the
	// registry for per-segment spans.
	slotBudget time.Duration
	met        *audioMetrics
	obsCtx     context.Context

	// onSlack, when non-nil, receives every segment's deadline slack —
	// the SessionManager's per-session slack export. Set once before the
	// first Send; called concurrently from pool workers, so the hook
	// must be safe for concurrent use.
	onSlack func(slack time.Duration)
}

// audioMetrics holds the audio path's telemetry handles; nil disables
// them at one branch per record.
type audioMetrics struct {
	slack *obs.Histogram
	late  *obs.Counter
}

func newAudioMetrics(r *obs.Registry) *audioMetrics {
	if r == nil {
		return nil
	}
	return &audioMetrics{
		// ±10 ms around the deadline in 1.25 ms slot-pair steps.
		slack: r.Histogram("bluefi_audio_deadline_slack_seconds",
			"slot budget minus segment synthesis time (negative = deadline missed)",
			obs.LinearBuckets(-10e-3, 1.25e-3, 17)),
		late: r.Counter("bluefi_audio_frames_late_total",
			"segments whose synthesis exceeded the slot budget"),
	}
}

func (m *audioMetrics) observeSegment(slack time.Duration) {
	if m == nil {
		return
	}
	m.slack.Observe(slack.Seconds())
	if slack < 0 {
		m.late.Inc()
	}
}

// AudioTransmission is one baseband packet of the stream, synthesized
// and ready for its time slot.
type AudioTransmission struct {
	Packet *Packet
	// Clock is the Bluetooth clock of the packet's slot; release the
	// frame at exactly that instant (the paper uses a high-resolution
	// kernel timer for this).
	Clock uint32
	// BTChannel is the AFH-mapped Bluetooth channel of the slot.
	BTChannel int
}

// NewAudioStream opens a stream on the synthesizer's WiFi channel.
func (s *Synthesizer) NewAudioStream(cfg AudioConfig) (*AudioStream, error) {
	if cfg.PacketType == 0 {
		cfg.PacketType = DM5
	}
	if cfg.BestChannels == 0 {
		cfg.BestChannels = 3
	}
	if cfg.SBC == (SBCConfig{}) {
		cfg.SBC = SBCConfig{SampleRateHz: 44100, Blocks: 16, Stereo: true, Subbands: 8, Bitpool: 35}
	}
	pt, err := cfg.PacketType.inner()
	if err != nil {
		return nil, err
	}
	sbcCfg, err := cfg.SBC.inner()
	if err != nil {
		return nil, err
	}
	center := 2407 + 5*float64(s.opts.WiFiChannel)
	ranked, err := rankedChannels(s.opts.WiFiChannel, center)
	if err != nil {
		return nil, err
	}
	if len(ranked) < cfg.BestChannels {
		return nil, fmt.Errorf("bluefi: only %d usable audio channels in WiFi channel %d", len(ranked), s.opts.WiFiChannel)
	}
	best := append([]int(nil), ranked[:cfg.BestChannels]...)
	sort.Ints(best)
	sched, err := a2dp.NewScheduler(a2dp.StreamConfig{
		Device:        bt.Device(cfg.Device),
		WiFiCenterMHz: center,
		PacketType:    pt,
		BestChannels:  best,
		Telemetry:     s.opts.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	enc, err := sbc.NewEncoder(sbcCfg)
	if err != nil {
		return nil, err
	}
	frames := cfg.FramesPerPacket
	if frames <= 0 {
		frames = a2dp.FramesPerPacket(pt, sbcCfg)
	}
	if frames < 1 {
		frames = 1 // L2CAP segmentation spreads it over several packets
	}
	adv := pt.Slots()
	if adv%2 == 1 {
		adv++
	}
	budget := cfg.SlotBudget
	if budget <= 0 {
		budget = time.Duration(adv) * 625 * time.Microsecond
	}
	a := &AudioStream{
		syn: s, sched: sched, enc: enc, sbcCfg: sbcCfg, dev: cfg.Device, frames: frames,
		inj:         s.inj,
		ranked:      ranked,
		curBitpool:  sbcCfg.Bitpool,
		curChannels: cfg.BestChannels,
		segSlots:    adv,
		slotBudget:  budget,
		met:         newAudioMetrics(s.opts.Telemetry),
		obsCtx:      obs.WithRegistry(context.Background(), s.opts.Telemetry),
	}
	if cfg.Degrade != nil {
		pc := *cfg.Degrade
		if pc.Telemetry == nil {
			pc.Telemetry = s.opts.Telemetry
		}
		a.gov = a2dp.NewGovernor(pc, sbcCfg.Bitpool, cfg.BestChannels)
	}
	return a, nil
}

// SamplesPerSend returns the PCM samples per channel one Send consumes.
func (a *AudioStream) SamplesPerSend() int { return a.frames * a.sbcCfg.SamplesPerFrame() }

// Channels returns the PCM channel count the stream expects.
func (a *AudioStream) Channels() int { return a.sbcCfg.Mode.Channels() }

// Health returns the stream's degradation state; without
// AudioConfig.Degrade it is always HealthHealthy.
func (a *AudioStream) Health() HealthState {
	if a.gov == nil {
		return HealthHealthy
	}
	return a.gov.State()
}

// Report summarizes the degradation history (zero value without
// AudioConfig.Degrade).
func (a *AudioStream) Report() DegradationReport {
	if a.gov == nil {
		return DegradationReport{}
	}
	return a.gov.Report()
}

// transientErr classifies failures the degradation policy may absorb as
// a dropped packet: injected faults and pool-infrastructure losses. Real
// synthesis errors (bad input, no covering channel) and a closed pool
// always propagate.
func transientErr(err error) bool {
	var pe *PanicError
	return faults.IsInjected(err) || errors.As(err, &pe) ||
		errors.Is(err, ErrJobTimeout) || errors.Is(err, ErrJobShed) || errors.Is(err, ErrPoolOverloaded)
}

// Send encodes one media packet's worth of PCM (pcm[channel][sample],
// exactly SamplesPerSend() samples per channel) and returns the
// synthesized baseband transmissions — one per L2CAP segment.
//
// With AudioConfig.Degrade armed, Send may return (nil, nil): the packet
// was shed — by the Shedding policy, or because a transient fault
// (injected, worker panic, timeout) lost it — and the stream remains
// usable. The governor's Report() accounts for every such drop.
func (a *AudioStream) Send(pcm [][]float64) ([]*AudioTransmission, error) {
	if len(pcm) != a.Channels() {
		return nil, fmt.Errorf("bluefi: %d PCM channels, want %d", len(pcm), a.Channels())
	}
	if a.gov != nil && a.dropNext {
		a.dropNext = false
		a.gov.RecordDropped(1)
		a.gov.Observe(a2dp.Signal{Slots: a.segSlots}) // a shed packet is a clean observation
		return nil, nil
	}
	spf := a.sbcCfg.SamplesPerFrame()
	frames := make([][]byte, a.frames)
	for f := range frames {
		in := make([][]float64, len(pcm))
		for ch := range pcm {
			if len(pcm[ch]) != a.SamplesPerSend() {
				return nil, fmt.Errorf("bluefi: channel %d has %d samples, want %d", ch, len(pcm[ch]), a.SamplesPerSend())
			}
			in[ch] = pcm[ch][f*spf : (f+1)*spf]
		}
		fr, err := a.enc.Encode(in)
		if err != nil {
			return nil, err
		}
		frames[f] = fr
	}
	scheduled, err := a.sched.ScheduleMedia(frames, uint32(a.SamplesPerSend()))
	if err != nil {
		return nil, err
	}
	// Injected interference dirties this packet's channel; the governor
	// sees the duty cycle as a degradation signal.
	var duty float64
	if a.gov != nil {
		if intf, on := a.inj.Interference(); on {
			duty = intf.DutyCycle
		}
	}
	out, worstSlack, err := a.synthesizeAll(scheduled)
	if a.gov == nil {
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	dec := a.gov.Observe(a2dp.Signal{
		DeadlineMiss:     worstSlack < 0,
		SynthesisFailed:  err != nil,
		InterferenceDuty: duty,
		Slots:            a.segSlots * len(scheduled),
	})
	a.applyDecision(dec)
	a.dropNext = dec.Drop
	if err != nil {
		if transientErr(err) {
			a.gov.RecordDropped(1)
			return nil, nil
		}
		return nil, err
	}
	a.gov.RecordShipped(1)
	return out, nil
}

// synthesizeAll runs every scheduled segment — across the pool when one
// is attached, serially otherwise — and reports the worst deadline slack
// and the first error.
func (a *AudioStream) synthesizeAll(scheduled []*a2dp.ScheduledPacket) ([]*AudioTransmission, time.Duration, error) {
	type seg struct {
		tx    *AudioTransmission
		slack time.Duration
	}
	worst := time.Duration(1<<62 - 1)
	if a.pool != nil {
		// Segments are independent synthesis jobs; fan them out across
		// the pool's workers. Results keep segment order.
		out := make([]*AudioTransmission, len(scheduled))
		slacks := make([]time.Duration, len(scheduled))
		errs := make([]error, len(scheduled))
		var wg sync.WaitGroup
		for i, sp := range scheduled {
			i, sp := i, sp
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The segment's slot clock is its EDF deadline: under
				// Options.EDF the pool services whichever stream's
				// segment is closest to its slot.
				res, err := poolDoDeadline(a.pool, uint64(sp.Clock), func(s *Synthesizer) (seg, error) {
					tx, slack, serr := a.synthesizeScheduled(s, sp)
					if serr != nil {
						return seg{}, serr
					}
					return seg{tx, slack}, nil
				})
				out[i], slacks[i], errs[i] = res.tx, res.slack, err
			}()
		}
		wg.Wait()
		var first error
		for i := range out {
			if errs[i] != nil && first == nil {
				first = errs[i]
			}
			if errs[i] == nil && slacks[i] < worst {
				worst = slacks[i]
			}
		}
		if first != nil {
			return nil, worst, first
		}
		return out, worst, nil
	}
	out := make([]*AudioTransmission, 0, len(scheduled))
	for _, sp := range scheduled {
		tx, slack, err := a.synthesizeScheduled(a.syn, sp)
		if err != nil {
			return nil, worst, err
		}
		if slack < worst {
			worst = slack
		}
		out = append(out, tx)
	}
	return out, worst, nil
}

// applyDecision moves the codec and channel map to the governor's
// targets. Sample geometry (blocks × subbands) never changes, so
// SamplesPerSend stays constant across quality steps.
func (a *AudioStream) applyDecision(dec a2dp.Decision) {
	if dec.Bitpool != a.curBitpool {
		if err := a.enc.SetBitpool(dec.Bitpool); err == nil {
			a.curBitpool = dec.Bitpool
			a.sbcCfg.Bitpool = dec.Bitpool
		}
	}
	if dec.BestChannels != a.curChannels {
		k := dec.BestChannels
		if k > len(a.ranked) {
			k = len(a.ranked)
		}
		chs := append([]int(nil), a.ranked[:k]...)
		sort.Ints(chs)
		if err := a.sched.SetBest(chs); err == nil {
			a.curChannels = dec.BestChannels
		}
	}
}

// synthesizeScheduled synthesizes one scheduled segment on the given
// synthesizer with rehearsal-gated transmission: when synthesis predicts
// more bit errors than the packet's FEC can absorb, move to the next slot
// — its clock re-whitens the payload into a fresh waveform. The returned
// slack is the slot budget minus the segment's (possibly fault-inflated)
// synthesis time; negative means a live link would have missed the slot.
func (a *AudioStream) synthesizeScheduled(syn *Synthesizer, sp *a2dp.ScheduledPacket) (*AudioTransmission, time.Duration, error) {
	_, span := obs.StartSpan(a.obsCtx, "audio.segment")
	var res *core.Result
	var spent core.Timings // across re-slot attempts; reported on the winner
	for attempt := 0; ; attempt++ {
		air, err := sp.Packet.AirBits(bt.Device(a.dev))
		if err != nil {
			span.End()
			return nil, 0, err
		}
		res, err = syn.br.Synthesize(air, sp.ChannelMHz)
		if err != nil {
			span.End()
			return nil, 0, err
		}
		spent.IQGen += res.Timings.IQGen
		spent.FFTQAM += res.Timings.FFTQAM
		spent.FEC += res.Timings.FEC
		spent.Scramble += res.Timings.Scramble
		if res.RehearsalMismatches <= 4 || attempt >= 3 {
			break
		}
		sp = a.sched.Reslot(sp)
	}
	res.Timings = spent
	// Deadline slack: how much of the slot budget (packet slots × 625 µs)
	// the rehearsal-gated synthesis left unused. Negative means the frame
	// would have missed its slot on a live link. An injected latency
	// penalty inflates the charged time machine-independently.
	slack := a.slotBudget - span.End() - a.inj.LatencyPenalty(a.slotBudget)
	a.met.observeSegment(slack)
	if a.onSlack != nil {
		a.onSlack(slack)
	}
	pkt, err := syn.wrap(res, -1)
	if err != nil {
		return nil, slack, err
	}
	return &AudioTransmission{Packet: pkt, Clock: uint32(sp.Clock), BTChannel: sp.Channel}, slack, nil
}

// NewAudioStream opens an audio stream whose per-Send segment synthesis
// fans out across the pool's workers — the concurrent variant of
// Synthesizer.NewAudioStream for real-time A2DP workloads. Returns
// ErrPoolClosed on a closed pool.
func (p *Pool) NewAudioStream(cfg AudioConfig) (*AudioStream, error) {
	if p.isClosed() {
		return nil, ErrPoolClosed
	}
	a, err := p.syns[0].NewAudioStream(cfg)
	if err != nil {
		return nil, err
	}
	a.pool = p
	if p.inj != nil {
		a.inj = p.inj
	}
	return a, nil
}

// rankedChannels scores the Bluetooth channels inside the WiFi channel
// by pilot/null clearance and returns them best-first (paper §4.7: "we
// select 3 best channels to transmit audio packets"). The full ranking
// lets the degradation policy shrink to a cleanest-prefix and restore.
func rankedChannels(wifiCh int, centerMHz float64) ([]int, error) {
	type scored struct {
		ch    int
		score float64
	}
	var all []scored
	for _, btCh := range bt.ChannelsInWiFiBand(centerMHz, 0.7) {
		plan, err := core.PlanForChannel(bt.ChannelMHz(btCh), wifiCh)
		if err != nil {
			continue
		}
		all = append(all, scored{btCh, plan.Score})
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("bluefi: no usable audio channels in WiFi channel %d", wifiCh)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].ch < all[j].ch
	})
	out := make([]int, len(all))
	for i := range out {
		out[i] = all[i].ch
	}
	return out, nil
}
