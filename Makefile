# Tier-1 gate: what every change must keep green.
.PHONY: verify
verify: vet build test lint

# Invariant lint tier: one binary runs the seven BlueFi analyzers
# (determinism, poolbalance, lockcheck, scratchalias, alloccheck,
# leakcheck, obsnames) plus the std vet passes the repo cares about
# (copylocks, loopclosure, atomicassign, nilness). Non-zero exit on any
# finding not recorded in lint_baseline.json. The binary is built once
# into .bin/ and per-package results are cached in .lintcache/, so a
# no-change re-run costs milliseconds. See DESIGN.md §7 and §11 for the
# annotations the analyzers understand.
.PHONY: lint
lint: .bin/bluefi-lint
	.bin/bluefi-lint -cache -baseline lint_baseline.json ./...

.bin/bluefi-lint: FORCE
	@mkdir -p .bin
	go build -o .bin/bluefi-lint ./cmd/bluefi-lint

.PHONY: FORCE
FORCE:

# Machine-readable lint report: every finding (pre-baseline) as a JSON
# array in lint_report.json — the CI artifact reviewers diff against
# lint_baseline.json.
.PHONY: lint-json
lint-json: .bin/bluefi-lint
	-.bin/bluefi-lint -json ./... > lint_report.json
	@wc -c lint_report.json

# Refresh the accepted-findings baseline after an intentional change;
# review the diff like any other code.
.PHONY: lint-baseline
lint-baseline: .bin/bluefi-lint
	.bin/bluefi-lint -write-baseline lint_baseline.json ./...

# Escape-corroborated allocation audit: alloccheck findings the
# compiler's own escape analysis (-gcflags=-m) proves non-escaping are
# downgraded. Slower (full recompile); advisory, not a CI gate.
.PHONY: lint-escape
lint-escape: .bin/bluefi-lint
	.bin/bluefi-lint -escape -run alloccheck ./...

.PHONY: vet
vet:
	go vet ./...

.PHONY: build
build:
	go build ./...

.PHONY: test
test:
	go test -count=1 ./...

# Race tier: the concurrency layer (Pool, parallel rehearsal search,
# pool-backed audio streams) under the race detector. Short mode skips
# the long experiment suites but keeps every concurrency and golden test.
.PHONY: race
race: vet
	go test -race -short -count=1 ./...

# Chaos tier: deterministic fault injection (internal/faults) against
# the hardened pool and the degradation-aware audio path, under the race
# detector. The root TestChaos suite asserts injected worker panics,
# latency inflation and interference bursts never escape the library,
# the acceptance storm still ships ≥80% of frames, health recovers once
# the fault budget is spent, and (via runtime.NumGoroutine) the pool
# leaks zero goroutines; the package runs cover the injector's replay
# contract, the degradation governor and interferer-driven decode loss.
.PHONY: chaos
chaos:
	go test -race -count=1 ./internal/faults ./internal/a2dp ./internal/btrx
	go test -race -count=1 -timeout 30m -run TestChaos .

# E2E tier: the TX→RX loopback conformance rig under the race detector.
# Every synthesis mode (BLE beacon, BR, EDR) goes through the public API,
# the seeded channel model and back through internal/scan; the golden
# round-trip decodes every committed PSDU vector; the connection test
# drives ADV_IND → CONN_IND → data-channel hopping → ATT read with
# goroutine-leak checks. The bluefi-eval matrix gates per-leg PDR and
# appends the scanner snapshot to BENCH_eval.json. See DESIGN.md §10.
.PHONY: e2e
e2e:
	go test -race -count=1 -run 'TestE2E|TestGoldenRoundTrip' .
	go test -race -count=1 ./internal/scan
	go run ./cmd/bluefi-eval -e2e

# Regenerate the committed determinism vectors after an intentional
# pipeline change; review the diff like any other code.
.PHONY: golden
golden:
	go test . -run TestGoldenPSDUs -update-golden -count=1

# Benchmark regression snapshot: BENCH_*.json with ns/op and allocs/op
# for the §4.8 latency budget and the Fig. 9/10 harnesses.
.PHONY: bench-json
bench-json:
	go run ./cmd/bluefi-eval -bench-json

.PHONY: bench
bench:
	go test -bench . -benchmem ./...

# Telemetry overhead gate: an attached registry may cost at most 5% on
# the §4.8 real-time synthesis ns/op versus telemetry disabled
# (DESIGN.md §8's budget). Non-zero exit on regression.
.PHONY: obs-overhead
obs-overhead:
	go run ./cmd/bluefi-eval -obs-overhead

# Allocation regression gate: §4.8 real-time 1-slot allocs/op may
# exceed the committed BENCH_eval.json row by at most 5% — the runtime
# counterpart of alloccheck's static //bluefi:allocfree contract.
.PHONY: alloc-gate
alloc-gate:
	go run ./cmd/bluefi-eval -alloc-gate

# SLO gate: the alerting layer's acceptance loop. The package tests
# cover the burn-rate math, the hysteresis ladder and the flight
# recorder's bundle contract under the race detector; the bluefi-eval
# replay then drives the chaos storm through the engine and gates on
# the operating contract — exactly one Page episode (opened within one
# fast window of the storm, held together by hysteresis), recovery to
# OK once the fault budget is spent, and a validated flight bundle
# dumped by the page hook into flight/ (uploaded as the CI artifact on
# failure). See DESIGN.md §13.
.PHONY: slo-gate
slo-gate:
	go test -race -count=1 ./internal/obs/...
	go run ./cmd/bluefi-eval -slo

# Fleet soak tier: the beacon-CDN capacity experiment (internal/fleet +
# internal/eval). The package tests cover cache/budget/shard invariants
# and GOMAXPROCS determinism under the race detector; the bluefi-eval
# soak then registers 100k beacons across 64 shards, enforces the ≥90%
# steady-state PSDU cache hit rate floor and zero failed registrations,
# and appends the capacity curve (beacons vs p50/p99/max beacon-slot
# latency) to BENCH_eval.json. See DESIGN.md §12.
.PHONY: fleet-soak
fleet-soak:
	go test -race -count=1 ./internal/fleet
	go test -race -count=1 -run 'TestFleetSoak' ./internal/eval
	go run ./cmd/bluefi-eval -fleet-soak

# A2DP soak tier: the multi-session capacity experiment (SessionManager
# over one shared pool). The package tests cover admission projection,
# EDF replay and the shedding budget's fairness under the race
# detector; the bluefi-eval soak then ramps sessions to the admission
# knee, gates on ≥3 admitted sessions each shipping above the global
# floor on the clean pool, EDF not losing to FIFO on the contended
# schedule, a valid admit/reject flight bundle, and the fault storm
# keeping the fleet at the floor — then appends the capacity curve to
# BENCH_eval.json. See DESIGN.md §14.
.PHONY: a2dp-soak
a2dp-soak:
	go test -race -count=1 ./internal/a2dp
	go test -race -count=1 -run 'TestA2DPSoak' ./internal/eval
	go run ./cmd/bluefi-eval -a2dp-soak
