// Package bluefi transmits Bluetooth packets with commodity 802.11n WiFi
// hardware — a reproduction of "BlueFi: Bluetooth over WiFi" (Cho & Shin,
// SIGCOMM 2021).
//
// The library converts a Bluetooth packet (a BLE advertisement, a classic
// BR/EDR baseband packet, or raw GFSK air bits) into an 802.11n PSDU byte
// string. When an unmodified WiFi chip transmits that PSDU, the resulting
// waveform is decodable by unmodified Bluetooth receivers. The conversion
// reverses every block of the WiFi transmit chain: cyclic-prefix insertion
// and OFDM windowing, QAM quantization, pilot/null subcarriers, the
// convolutional FEC, and the scrambler.
//
// Quick start:
//
//	syn, err := bluefi.New(bluefi.Options{Chip: bluefi.RTL8811AU})
//	pkt, err := syn.Beacon(bluefi.IBeacon{...}.ADStructures(), addr, 38)
//	// hand pkt.PSDU to the WiFi driver; or simulate reception:
//	rep, err := bluefi.Simulate(pkt, bluefi.SimulationParams{DistanceM: 1.5})
//
// Everything runs on a pure-Go simulated substrate — WiFi PHY, Bluetooth
// baseband, radio channel, GFSK receivers — so the paper's experiments
// reproduce without hardware (see DESIGN.md and EXPERIMENTS.md).
package bluefi

import (
	"fmt"
	"time"

	"bluefi/internal/a2dp"
	"bluefi/internal/beacon"
	"bluefi/internal/bt"
	"bluefi/internal/btrx"
	"bluefi/internal/channel"
	"bluefi/internal/chip"
	"bluefi/internal/core"
	"bluefi/internal/faults"
	"bluefi/internal/gfsk"
	"bluefi/internal/obs"
)

// Telemetry is the unified observability registry: typed metrics
// (counters, gauges, latency histograms), span traces of the synthesis
// pipeline, and exporters. Attach one registry via Options.Telemetry
// (and a2dp.StreamConfig.Telemetry / NewPool) to see stage latency
// histograms, pool queue depth, scheduler deadline slack and FEC
// statistics; serve Telemetry.Handler() for /metrics (Prometheus text
// format), /metrics.json and /traces. A nil registry disables all
// recording at the cost of one branch per record site.
type Telemetry = obs.Registry

// NewTelemetry returns an empty telemetry registry.
func NewTelemetry() *Telemetry { return obs.NewRegistry() }

// TelemetryCounter, TelemetryGauge and TelemetryHistogram name the
// metric handles a Telemetry registry hands out, so callers can store
// them in struct fields and register metrics of their own next to the
// built-in bluefi_* families.
type (
	TelemetryCounter   = obs.Counter
	TelemetryGauge     = obs.Gauge
	TelemetryHistogram = obs.Histogram
)

// FaultPlan declares deterministic fault injection for chaos testing:
// seed-driven worker panics, synthesis errors, job latency inflation and
// interference bursts. Attach one via Options.Faults; nil (the default)
// disables injection entirely, the production configuration. Faults fired
// appear in Telemetry as bluefi_faults_injected_total{kind}. See
// DESIGN.md §9 for the fault model.
type FaultPlan = faults.Plan

// ErrInjectedFault marks errors fabricated by a FaultPlan; match with
// errors.Is to tell injected failures from real ones.
var ErrInjectedFault = faults.ErrInjected

// DegradePolicy tunes an audio stream's graceful degradation (attach
// via AudioConfig.Degrade; the zero value gives sensible defaults). The
// stream walks Healthy → Degraded → Shedding on sustained deadline
// misses, synthesis faults or interference — stepping down the SBC
// bitpool, shrinking the AFH hop set to the cleanest channels, and
// finally shedding media packets above a shipped-fraction floor — and
// recovers with hysteresis once the link stays clean. See DESIGN.md §9.
type DegradePolicy = a2dp.PolicyConfig

// HealthState is an audio stream's degradation state.
type HealthState = a2dp.Health

// Audio stream health states (see AudioStream.Health).
const (
	HealthHealthy  = a2dp.Healthy
	HealthDegraded = a2dp.Degraded
	HealthShedding = a2dp.Shedding
)

// DegradationReport summarizes a stream's degradation history: frames
// shipped vs dropped, slots spent per health state, transitions, and the
// currently applied quality targets (see AudioStream.Report).
type DegradationReport = a2dp.Report

// Mode selects the FEC-inversion strategy (paper §2.7).
type Mode int

// Synthesis modes.
const (
	// Quality runs the weighted Viterbi search (rate 5/6) — best fidelity,
	// tens of milliseconds per packet.
	Quality Mode = iota
	// RealTime runs the O(T) exact-match inverter (rate 2/3) — fits the
	// 1.25 ms Bluetooth slot-pair budget, as the audio application needs.
	RealTime
)

// ChipModel selects the simulated WiFi chip whose quirks (scrambler-seed
// policy, frame limits, transmit power) the synthesis must match.
type ChipModel int

// Supported chips — the paper's two evaluation devices plus a generic
// 802.11n part with an incrementing scrambler seed.
const (
	AR9331 ChipModel = iota
	RTL8811AU
	Generic80211n
)

func (c ChipModel) model() (chip.Model, error) {
	switch c {
	case AR9331:
		return chip.AR9331, nil
	case RTL8811AU:
		return chip.RTL8811AU, nil
	case Generic80211n:
		return chip.Generic80211n, nil
	}
	return chip.Model{}, fmt.Errorf("bluefi: unknown chip model %d", int(c))
}

// Options configures a Synthesizer. The zero value is usable: quality
// mode on WiFi channel 3 with the AR9331 chip model.
type Options struct {
	// Chip selects the target WiFi chip.
	Chip ChipModel
	// WiFiChannel pins the 2.4 GHz channel (default 3). The Bluetooth
	// frequency must fall inside it; Plan lists what each channel covers.
	WiFiChannel int
	// Mode selects Quality (default) or RealTime synthesis.
	Mode Mode
	// Telemetry, when non-nil, receives synthesis metrics and spans (see
	// the Telemetry type). Pools and audio streams built from these
	// options share the registry.
	Telemetry *Telemetry
	// Faults, when non-nil, arms the deterministic fault injector (see
	// FaultPlan) — chaos testing only; leave nil in production.
	Faults *FaultPlan

	// JobTimeout bounds one pool job's queue wait plus execution; a job
	// exceeding it fails with ErrJobTimeout (0 = no deadline). The worker
	// is not interrupted — synthesis is CPU-bound — but the late result
	// is discarded.
	JobTimeout time.Duration
	// Retry re-runs pool jobs that fail retryably (panic, timeout,
	// injected fault) with exponential backoff.
	Retry RetryPolicy
	// QueueDepth bounds the pool's job queue (0 = 4×workers).
	QueueDepth int
	// Overload selects what a full queue does with new jobs: Block
	// (default), Reject, or DropOldest.
	Overload OverloadPolicy
	// EDF orders the pool's job queue earliest-deadline-first instead of
	// FIFO: audio streams stamp every segment job with its Bluetooth
	// slot clock, so under load the segment closest to its 625 µs slot
	// runs first, deadline-less batch jobs yield to real-time work, and
	// DropOldest evicts the job with the most slack to spare. What a
	// multi-session A2DP deployment wants; see DESIGN.md §14.
	EDF bool
}

// Synthesizer converts Bluetooth packets to WiFi PSDUs for one chip and
// channel. A Synthesizer's methods must not be called concurrently — but
// concurrency is available one level up: Pool owns a fleet of independent
// Synthesizers behind a work queue (SynthesizeBatch / BeaconBatch), and
// inside each Synthesizer the rehearsal-scored phase search fans out over
// a bounded worker pool with deterministic, order-independent candidate
// selection, so parallel synthesis stays bit-identical to serial.
type Synthesizer struct {
	opts    Options
	chip    *chip.Chip
	quality *core.Synthesizer // BLE path (LE 1M GFSK)
	br      *core.Synthesizer // BR path (basic-rate GFSK)
	inj     *faults.Injector  // nil without Options.Faults
}

// New builds a Synthesizer.
func New(opts Options) (*Synthesizer, error) {
	if opts.WiFiChannel == 0 {
		opts.WiFiChannel = 3
	}
	m, err := ChipModel(opts.Chip).model()
	if err != nil {
		return nil, err
	}
	c := chip.New(m)
	var inj *faults.Injector
	if opts.Faults != nil {
		inj = faults.New(*opts.Faults, opts.Telemetry)
	}
	mk := func(g gfsk.Config) (*core.Synthesizer, error) {
		o := core.DefaultOptions()
		o.Mode = core.Mode(opts.Mode)
		o.WiFiChannel = opts.WiFiChannel
		o.ScramblerSeed = c.NextSeed()
		o.GFSK = g
		o.Telemetry = opts.Telemetry
		o.Faults = inj
		return core.New(o)
	}
	q, err := mk(gfsk.BLEConfig())
	if err != nil {
		return nil, err
	}
	b, err := mk(gfsk.BRConfig())
	if err != nil {
		return nil, err
	}
	return &Synthesizer{opts: opts, chip: c, quality: q, br: b, inj: inj}, nil
}

// Packet is a synthesized WiFi frame carrying a Bluetooth transmission.
type Packet struct {
	// PSDU is the byte string to hand to the WiFi driver (with the MCS
	// below, short guard interval, scrambler seed per the chip model).
	PSDU []byte
	// MCS is the modulation-and-coding scheme the frame must use (7 in
	// quality mode, 5 in real-time mode).
	MCS int
	// WiFiChannel and FrequencyMHz record the frequency plan.
	WiFiChannel  int
	FrequencyMHz float64
	// AirtimeSeconds is the frame's on-air duration.
	AirtimeSeconds float64
	// Fidelity reports the in-band phase RMSE of the predicted waveform
	// against the ideal Bluetooth waveform, in radians (lower is better;
	// ≲0.3 decodes reliably on strong links).
	Fidelity float64
	// RehearsalMismatches counts bit decisions the synthesis-time
	// reception rehearsal got wrong for the chosen candidate (−1 when no
	// rehearsal ran). Nonzero predicts failure on a clean link; callers
	// with scheduling freedom (the audio path) re-slot such packets.
	RehearsalMismatches int
	// BLEChannel is set for advertising packets (37–39), −1 otherwise.
	BLEChannel int

	res *core.Result
}

func (s *Synthesizer) wrap(res *core.Result, bleChannel int) (*Packet, error) {
	at, err := s.chip.Airtime(len(res.PSDU), s.mcs())
	if err != nil {
		return nil, err
	}
	return &Packet{
		PSDU:                res.PSDU,
		MCS:                 s.mcs(),
		WiFiChannel:         res.Plan.WiFiChannel,
		FrequencyMHz:        res.Plan.WiFiCenterMHz + res.Plan.OffsetHz/1e6,
		AirtimeSeconds:      at,
		Fidelity:            res.PhaseRMSE,
		RehearsalMismatches: res.RehearsalMismatches,
		BLEChannel:          bleChannel,
		res:                 res,
	}, nil
}

func (s *Synthesizer) mcs() int { return core.Mode(s.opts.Mode).MCS() }

// Beacon synthesizes a BLE advertising packet (up to 31 bytes of AD
// structures) on advertising channel 37, 38 or 39. Only channels covered
// by the configured WiFi channel work; channel 38 (2426 MHz) pairs with
// WiFi channel 3 as in the paper.
func (s *Synthesizer) Beacon(adStructures []byte, addr [6]byte, bleChannel int) (*Packet, error) {
	adv, err := beacon.Advertisement(addr, adStructures)
	if err != nil {
		return nil, err
	}
	air, err := adv.AirBits(bleChannel)
	if err != nil {
		return nil, err
	}
	freq, err := bt.BLEChannelMHz(bleChannel)
	if err != nil {
		return nil, err
	}
	res, err := s.quality.Synthesize(air, freq)
	if err != nil {
		return nil, err
	}
	return s.wrap(res, bleChannel)
}

// BRPacket synthesizes a classic BR/EDR baseband packet on a Bluetooth
// channel index (0–78). The device supplies the access code and CRC
// context; the packet's Clock field must hold the transmission slot's
// clock (it whitens the payload).
func (s *Synthesizer) BRPacket(dev Device, pkt *BasebandPacket, btChannel int) (*Packet, error) {
	if btChannel < 0 || btChannel >= bt.NumChannels {
		return nil, fmt.Errorf("bluefi: Bluetooth channel %d out of range", btChannel)
	}
	pt, err := pkt.Type.inner()
	if err != nil {
		return nil, err
	}
	inner := &bt.Packet{
		Type:    pt,
		LTAddr:  pkt.LTAddr,
		Flow:    pkt.Flow,
		ARQN:    pkt.ARQN,
		SEQN:    pkt.SEQN,
		Payload: pkt.Payload,
		Clock:   pkt.Clock,
		LLID:    pkt.LLID,
	}
	air, err := inner.AirBits(bt.Device(dev))
	if err != nil {
		return nil, err
	}
	res, err := s.br.Synthesize(air, bt.ChannelMHz(btChannel))
	if err != nil {
		return nil, err
	}
	return s.wrap(res, -1)
}

// RawGFSK synthesizes arbitrary Bluetooth air bits (1 Mb/s GFSK) at a
// carrier frequency in MHz. ble selects LE 1M deviation (±250 kHz) over
// basic-rate (±160 kHz).
func (s *Synthesizer) RawGFSK(airBits []byte, freqMHz float64, ble bool) (*Packet, error) {
	syn := s.br
	if ble {
		syn = s.quality
	}
	res, err := syn.Synthesize(airBits, freqMHz)
	if err != nil {
		return nil, err
	}
	return s.wrap(res, -1)
}

// Device mirrors the Bluetooth addressing context (LAP for the access
// code, UAP for HEC/CRC seeding).
type Device struct {
	LAP uint32
	UAP byte
}

// PacketType enumerates BR/EDR ACL baseband packet types. The zero value
// is invalid so option structs can detect "not set".
type PacketType int

// Baseband packet types: DM variants carry the 2/3-rate FEC.
const (
	DM1 = PacketType(bt.DM1) + 1
	DH1 = PacketType(bt.DH1) + 1
	DM3 = PacketType(bt.DM3) + 1
	DH3 = PacketType(bt.DH3) + 1
	DM5 = PacketType(bt.DM5) + 1
	DH5 = PacketType(bt.DH5) + 1
)

// inner converts to the baseband type, validating the value.
func (p PacketType) inner() (bt.PacketType, error) {
	if p < DM1 || p > DH5 {
		return 0, fmt.Errorf("bluefi: invalid packet type %d", int(p))
	}
	return bt.PacketType(p - 1), nil
}

// BasebandPacket describes one BR/EDR packet to synthesize.
type BasebandPacket struct {
	Type    PacketType
	LTAddr  byte
	Flow    byte
	ARQN    byte
	SEQN    byte
	LLID    byte
	Payload []byte
	Clock   uint32
}

// EDRType identifies the EDR 2-DH/3-DH ACL packet types (π/4-DQPSK at
// 2 Mb/s, 8DPSK at 3 Mb/s). The zero value is invalid so option structs
// can detect "not set".
type EDRType int

// EDR ACL packet types.
const (
	EDR2DH1 = EDRType(bt.EDR2DH1) + 1
	EDR2DH3 = EDRType(bt.EDR2DH3) + 1
	EDR2DH5 = EDRType(bt.EDR2DH5) + 1
	EDR3DH1 = EDRType(bt.EDR3DH1) + 1
	EDR3DH3 = EDRType(bt.EDR3DH3) + 1
	EDR3DH5 = EDRType(bt.EDR3DH5) + 1
)

// inner converts to the baseband EDR type, validating the value.
func (t EDRType) inner() (bt.EDRPacketType, error) {
	if t < EDR2DH1 || t > EDR3DH5 {
		return 0, fmt.Errorf("bluefi: invalid EDR packet type %d", int(t))
	}
	return bt.EDRPacketType(t - 1), nil
}

// EDRBasebandPacket describes one EDR packet to synthesize: GFSK access
// code and header at 1 Mb/s, DPSK payload at 2 or 3 Mb/s.
type EDRBasebandPacket struct {
	Type    EDRType
	LTAddr  byte
	Flow    byte
	ARQN    byte
	SEQN    byte
	LLID    byte
	Payload []byte
	Clock   uint32
}

// EDRPacket synthesizes an EDR baseband packet on a Bluetooth channel
// through the phase-trajectory entry point (§5.3). The GFSK access code
// and header decode through a COTS receiver like any BR packet; the
// DPSK payload survives every synthesis stage except the chip's cyclic-
// prefix insertion, so end-to-end payload recovery needs a CP-tolerant
// receiver (see DESIGN.md §10).
func (s *Synthesizer) EDRPacket(dev Device, pkt *EDRBasebandPacket, btChannel int) (*Packet, error) {
	if btChannel < 0 || btChannel >= bt.NumChannels {
		return nil, fmt.Errorf("bluefi: Bluetooth channel %d out of range", btChannel)
	}
	et, err := pkt.Type.inner()
	if err != nil {
		return nil, err
	}
	inner := &bt.EDRPacket{
		Type:    et,
		LTAddr:  pkt.LTAddr,
		Flow:    pkt.Flow,
		ARQN:    pkt.ARQN,
		SEQN:    pkt.SEQN,
		Payload: pkt.Payload,
		Clock:   pkt.Clock,
		LLID:    pkt.LLID,
	}
	theta, _, err := inner.AirPhase(bt.Device(dev), 20)
	if err != nil {
		return nil, err
	}
	res, err := s.br.SynthesizePhase(theta, bt.ChannelMHz(btChannel))
	if err != nil {
		return nil, err
	}
	return s.wrap(res, -1)
}

// IBeacon re-exports the iBeacon payload builder.
type IBeacon = beacon.IBeacon

// EddystoneUID re-exports the Eddystone-UID payload builder.
type EddystoneUID = beacon.EddystoneUID

// EddystoneURL re-exports the Eddystone-URL payload builder.
type EddystoneURL = beacon.EddystoneURL

// AltBeacon re-exports the AltBeacon payload builder.
type AltBeacon = beacon.AltBeacon

// ChannelPlan scores a WiFi channel as a carrier for a Bluetooth
// frequency (paper §2.6).
type ChannelPlan = core.ChannelPlan

// Timings breaks down where one packet's synthesis time went (§4.8).
type Timings = core.Timings

// Timings returns the packet's per-stage synthesis timing breakdown.
// With Options.Telemetry attached, the same durations also populate the
// bluefi_core_stage_seconds histograms, so the two views always agree.
func (p *Packet) Timings() Timings { return p.res.Timings }

// Waveform returns a copy of the predicted over-the-air IQ waveform at
// 20 Msps, centered on the WiFi channel — what an SDR capturing the
// frame would record before noise. External receive rigs feed it
// through a channel model into a scanner.
func (p *Packet) Waveform() []complex128 {
	out := make([]complex128, len(p.res.Waveform))
	copy(out, p.res.Waveform)
	return out
}

// ChannelOffsetHz returns the Bluetooth carrier's offset from the WiFi
// channel center — the tuning offset a receiver needs to demodulate the
// packet from the Waveform stream.
func (p *Packet) ChannelOffsetHz() float64 { return p.res.Plan.OffsetHz }

// Plan lists the WiFi channels able to carry a Bluetooth frequency,
// best (farthest from pilots and nulls) first.
func Plan(btMHz float64) []ChannelPlan { return core.PlanChannels(btMHz) }

// SimulationParams describes the simulated radio link for Simulate.
type SimulationParams struct {
	// TxPowerDBm defaults to the chip's stock power when zero.
	TxPowerDBm float64
	// DistanceM defaults to 1.5 m when zero.
	DistanceM float64
	// Receiver names a device profile: "Pixel" (default), "S6",
	// "iPhone" or "FTS4BT".
	Receiver string
	// Seed makes the channel noise reproducible.
	Seed int64
}

// SimReport is the outcome of a simulated reception.
type SimReport struct {
	Detected bool
	Decoded  bool
	RSSIdBm  float64
}

// Simulate transmits a synthesized packet through the simulated radio
// channel into a simulated unmodified Bluetooth receiver — the library's
// stand-in for the paper's over-the-air tests.
func (s *Synthesizer) Simulate(pkt *Packet, params SimulationParams) (SimReport, error) {
	if params.TxPowerDBm == 0 {
		params.TxPowerDBm = s.chip.Model().DefaultTxPowerDBm
	}
	if params.DistanceM == 0 {
		params.DistanceM = 1.5
	}
	prof := btrx.Pixel
	switch params.Receiver {
	case "", "Pixel":
	case "S6":
		prof = btrx.S6
	case "iPhone":
		prof = btrx.IPhone
	case "FTS4BT":
		prof = btrx.Sniffer
	default:
		return SimReport{}, fmt.Errorf("bluefi: unknown receiver profile %q", params.Receiver)
	}
	ch := channel.Default(params.TxPowerDBm, params.DistanceM)
	if params.Seed != 0 {
		ch.Seed = params.Seed
	}
	rx, err := ch.Apply(pkt.res.Waveform)
	if err != nil {
		return SimReport{}, err
	}
	rcv, err := btrx.NewReceiver(prof, pkt.res.Plan.OffsetHz, bt.Device{})
	if err != nil {
		return SimReport{}, err
	}
	if pkt.BLEChannel < 0 {
		return SimReport{}, fmt.Errorf("bluefi: Simulate currently supports BLE packets; use SimulateBR for BR/EDR")
	}
	rep, err := rcv.ReceiveBLE(rx, pkt.BLEChannel)
	if err != nil {
		return SimReport{}, err
	}
	return SimReport{Detected: rep.Detected, Decoded: rep.Detected && rep.Result.OK, RSSIdBm: rep.RSSIdBm}, nil
}

// SimulateBR mirrors Simulate for classic BR/EDR packets; dev and clk
// must match the synthesized packet.
func (s *Synthesizer) SimulateBR(pkt *Packet, dev Device, clk uint32, params SimulationParams) (SimReport, error) {
	if params.TxPowerDBm == 0 {
		params.TxPowerDBm = s.chip.Model().DefaultTxPowerDBm
	}
	if params.DistanceM == 0 {
		params.DistanceM = 1.5
	}
	prof := btrx.Sniffer
	switch params.Receiver {
	case "", "FTS4BT":
	case "Pixel":
		prof = btrx.Pixel
	case "S6":
		prof = btrx.S6
	case "iPhone":
		prof = btrx.IPhone
	default:
		return SimReport{}, fmt.Errorf("bluefi: unknown receiver profile %q", params.Receiver)
	}
	ch := channel.Default(params.TxPowerDBm, params.DistanceM)
	if params.Seed != 0 {
		ch.Seed = params.Seed
	}
	rx, err := ch.Apply(pkt.res.Waveform)
	if err != nil {
		return SimReport{}, err
	}
	rcv, err := btrx.NewReceiver(prof, pkt.res.Plan.OffsetHz, bt.Device(dev))
	if err != nil {
		return SimReport{}, err
	}
	rep, err := rcv.ReceiveBR(rx, clk)
	if err != nil {
		return SimReport{}, err
	}
	return SimReport{Detected: rep.Detected, Decoded: rep.Detected && rep.Result.OK, RSSIdBm: rep.RSSIdBm}, nil
}
