module bluefi

go 1.22
