package bluefi

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bluefi/internal/obs"
)

// Pool is a fleet of Synthesizers behind a work queue — the concurrent
// entry point for multi-packet workloads: beacon fleets, PER sweeps, and
// A2DP streams. Each worker goroutine owns one Synthesizer, so jobs never
// share synthesis state; results land at the index of the job that
// produced them, never reordered by completion.
//
// All Pool methods are safe for concurrent use. Synthesis is
// deterministic per job: a job's PSDU does not depend on which worker ran
// it or on what else is in flight (every worker targets the same chip
// seed policy, and the parallel rehearsal search inside each Synthesizer
// is order-independent by construction).
type Pool struct {
	syns []*Synthesizer
	jobs chan func(*Synthesizer)

	mu     sync.Mutex
	closed bool // guarded by mu
	wg     sync.WaitGroup

	// met is nil without Options.Telemetry; obsCtx carries the registry
	// for per-job spans.
	met    *poolMetrics
	obsCtx context.Context
}

// poolMetrics holds the pool's telemetry handles; nil disables them at
// one branch per record. Worker utilization is derivable by a scraper as
// sum(bluefi_pool_job_seconds) / (bluefi_pool_workers × uptime); the
// jobs-in-flight gauge gives the instantaneous view.
type poolMetrics struct {
	workers  *obs.Gauge
	queue    *obs.Gauge
	inflight *obs.Gauge
	jobs     *obs.Counter
	jobSecs  *obs.Histogram
}

func newPoolMetrics(r *obs.Registry) *poolMetrics {
	if r == nil {
		return nil
	}
	return &poolMetrics{
		workers:  r.Gauge("bluefi_pool_workers", "synthesizer workers in the pool"),
		queue:    r.Gauge("bluefi_pool_queue_depth", "jobs enqueued but not yet picked up by a worker"),
		inflight: r.Gauge("bluefi_pool_jobs_inflight", "jobs currently executing"),
		jobs:     r.Counter("bluefi_pool_jobs_total", "jobs completed"),
		jobSecs: r.Histogram("bluefi_pool_job_seconds", "per-job execution latency",
			obs.ExpBuckets(1e-4, 3, 12)),
	}
}

func (m *poolMetrics) setWorkers(n int) {
	if m == nil {
		return
	}
	m.workers.Set(int64(n))
}

// enqueued/dequeued/finished bracket one job's life-cycle.
func (m *poolMetrics) enqueued() {
	if m == nil {
		return
	}
	m.queue.Inc()
}

func (m *poolMetrics) dequeued() {
	if m == nil {
		return
	}
	m.queue.Dec()
	m.inflight.Inc()
}

func (m *poolMetrics) finished(seconds float64) {
	if m == nil {
		return
	}
	m.inflight.Dec()
	m.jobs.Inc()
	m.jobSecs.Observe(seconds)
}

// NewPool builds a pool of n independent Synthesizers with the same
// options; n ≤ 0 sizes it to GOMAXPROCS.
func NewPool(opts Options, n int) (*Pool, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		jobs:   make(chan func(*Synthesizer)),
		met:    newPoolMetrics(opts.Telemetry),
		obsCtx: obs.WithRegistry(context.Background(), opts.Telemetry),
	}
	for i := 0; i < n; i++ {
		s, err := New(opts)
		if err != nil {
			close(p.jobs)
			p.wg.Wait()
			return nil, err
		}
		p.syns = append(p.syns, s)
		p.wg.Add(1)
		go func(s *Synthesizer) {
			defer p.wg.Done()
			for job := range p.jobs {
				p.met.dequeued()
				_, sp := obs.StartSpan(p.obsCtx, "pool.job")
				job(s)
				p.met.finished(sp.End().Seconds())
			}
		}(s)
	}
	p.met.setWorkers(len(p.syns))
	return p, nil
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.syns) }

// Close stops the workers. Outstanding batch calls finish first; calling
// any batch method after Close panics.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.jobs)
	p.wg.Wait()
}

// BatchJob describes one synthesis job of a mixed batch: exactly one of
// the three fields must be set.
type BatchJob struct {
	Beacon *BeaconJob
	BR     *BRJob
	Raw    *RawGFSKJob
}

// BeaconJob is a BLE advertising synthesis request (see
// Synthesizer.Beacon).
type BeaconJob struct {
	ADStructures []byte
	Addr         [6]byte
	BLEChannel   int
}

// BRJob is a classic BR/EDR baseband synthesis request (see
// Synthesizer.BRPacket).
type BRJob struct {
	Device    Device
	Packet    *BasebandPacket
	BTChannel int
}

// RawGFSKJob is an arbitrary-air-bits synthesis request (see
// Synthesizer.RawGFSK).
type RawGFSKJob struct {
	AirBits []byte
	FreqMHz float64
	BLE     bool
}

// BatchResult pairs one job's outcome with its error; exactly one of the
// two fields is set.
type BatchResult struct {
	Packet *Packet
	Err    error
}

func runJob(s *Synthesizer, job BatchJob) BatchResult {
	switch {
	case job.Beacon != nil && job.BR == nil && job.Raw == nil:
		pkt, err := s.Beacon(job.Beacon.ADStructures, job.Beacon.Addr, job.Beacon.BLEChannel)
		return BatchResult{Packet: pkt, Err: err}
	case job.BR != nil && job.Beacon == nil && job.Raw == nil:
		pkt, err := s.BRPacket(job.BR.Device, job.BR.Packet, job.BR.BTChannel)
		return BatchResult{Packet: pkt, Err: err}
	case job.Raw != nil && job.Beacon == nil && job.BR == nil:
		pkt, err := s.RawGFSK(job.Raw.AirBits, job.Raw.FreqMHz, job.Raw.BLE)
		return BatchResult{Packet: pkt, Err: err}
	}
	return BatchResult{Err: fmt.Errorf("bluefi: batch job must set exactly one of Beacon, BR, Raw")}
}

// SynthesizeBatch runs a mixed batch of jobs across the pool and returns
// one result per job, in job order. Jobs are independent: an error in one
// does not abort the others. Must not be called from inside another job
// (it would deadlock waiting for a free worker).
func (p *Pool) SynthesizeBatch(jobs []BatchJob) []BatchResult {
	results := make([]BatchResult, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		i := i
		wg.Add(1)
		p.met.enqueued()
		p.jobs <- func(s *Synthesizer) {
			defer wg.Done()
			results[i] = runJob(s, jobs[i])
		}
	}
	wg.Wait()
	return results
}

// BeaconBatch synthesizes a fleet of BLE advertising packets — the
// beacon-deployment workload — returning one result per job, in order.
func (p *Pool) BeaconBatch(jobs []BeaconJob) []BatchResult {
	batch := make([]BatchJob, len(jobs))
	for i := range jobs {
		batch[i] = BatchJob{Beacon: &jobs[i]}
	}
	return p.SynthesizeBatch(batch)
}

// do runs one function on the next free worker and waits for it.
func (p *Pool) do(fn func(*Synthesizer)) {
	var wg sync.WaitGroup
	wg.Add(1)
	p.met.enqueued()
	p.jobs <- func(s *Synthesizer) {
		defer wg.Done()
		fn(s)
	}
	wg.Wait()
}
