package bluefi

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bluefi/internal/faults"
	"bluefi/internal/obs"
)

// Pool is a fleet of Synthesizers behind a bounded work queue — the
// concurrent entry point for multi-packet workloads: beacon fleets, PER
// sweeps, and A2DP streams. Each worker goroutine owns one Synthesizer,
// so jobs never share synthesis state; results land at the index of the
// job that produced them, never reordered by completion.
//
// All Pool methods are safe for concurrent use. Synthesis is
// deterministic per job: a job's PSDU does not depend on which worker ran
// it or on what else is in flight (every worker targets the same chip
// seed policy, and the parallel rehearsal search inside each Synthesizer
// is order-independent by construction).
//
// The pool is fault-tolerant: a panicking job is converted into that
// job's *PanicError and the worker respawns, per-job deadlines and
// bounded retries come from Options.JobTimeout and Options.Retry, and the
// queue applies Options.Overload when full. Batch calls on a closed pool
// return ErrPoolClosed instead of panicking.
type Pool struct {
	syns []*Synthesizer
	q    *jobQueue
	opts Options

	mu      sync.Mutex
	closed  bool          // guarded by mu
	drained chan struct{} // created by the first Shutdown, guarded by mu
	wg      sync.WaitGroup

	// inj is the pool-level fault injector (nil without Options.Faults):
	// worker panics and job latency inflation fire here, on the worker
	// goroutine, under the recovery layer.
	inj *faults.Injector

	// met is nil without Options.Telemetry; obsCtx carries the registry
	// for per-job spans.
	met    *poolMetrics
	obsCtx context.Context
}

// Typed pool errors. Batch results and stream constructors return these
// instead of panicking; errors.Is matches them through retry wrapping.
var (
	// ErrPoolClosed: the job was submitted to (or queued on) a pool that
	// has been closed.
	ErrPoolClosed = errors.New("bluefi: pool is closed")
	// ErrPoolOverloaded: the queue was full under the Reject policy.
	ErrPoolOverloaded = errors.New("bluefi: pool queue full")
	// ErrJobShed: the job was evicted from a full queue under the
	// DropOldest policy to make room for newer work.
	ErrJobShed = errors.New("bluefi: job shed from full pool queue")
	// ErrJobTimeout: the job did not complete within Options.JobTimeout.
	// The worker executing it is not interrupted — synthesis is CPU-bound
	// and uncancellable mid-flight — but its result is discarded.
	ErrJobTimeout = errors.New("bluefi: job exceeded JobTimeout")
)

// PanicError is the error a job reports when its execution panicked.
// The worker that hit it has already been respawned; the panic never
// escapes the pool.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("bluefi: job panicked: %v", e.Value) }

// OverloadPolicy selects what a full job queue does with new work.
type OverloadPolicy int

const (
	// Block waits for queue space — lossless backpressure (default).
	Block OverloadPolicy = iota
	// Reject fails the new job immediately with ErrPoolOverloaded.
	Reject
	// DropOldest evicts the oldest queued job (failing it with
	// ErrJobShed) to admit the new one — freshest-first load shedding,
	// what a live audio stream wants.
	DropOldest
)

// RetryPolicy bounds how a pool job retries after a retryable failure
// (worker panic, job timeout, injected fault). Real synthesis errors —
// bad input, no covering channel — are never retried.
type RetryPolicy struct {
	// MaxAttempts caps total tries (≤1 = no retry).
	MaxAttempts int
	// Backoff is the first retry delay, doubling each attempt
	// (default 1ms when retries are enabled).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (0 = uncapped).
	MaxBackoff time.Duration
}

// backoffFor returns the delay before retry attempt n (1-based count of
// failures so far), growing exponentially from Backoff.
func (r RetryPolicy) backoffFor(n int) time.Duration {
	base := r.Backoff
	if base <= 0 {
		base = time.Millisecond
	}
	shift := n - 1
	if shift > 20 {
		shift = 20 // past ~1e6× the cap below has long since kicked in
	}
	d := base << shift
	if r.MaxBackoff > 0 && d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	return d
}

// retryable reports whether a failure class is worth another attempt.
func retryable(err error) bool {
	var pe *PanicError
	return errors.Is(err, ErrJobTimeout) || errors.As(err, &pe) || faults.IsInjected(err)
}

// noDeadline marks a job submitted without a slot deadline: under EDF
// ordering it sorts after every deadline-bearing job, so batch work
// yields to real-time audio segments.
const noDeadline = ^uint64(0)

// poolJob is one queued unit of work. fn must confine its writes to
// state owned by the job (the await side reads results only after done),
// so an abandoned job — one whose waiter timed out — can still finish
// harmlessly on its worker.
type poolJob struct {
	fn       func(*Synthesizer) error
	done     chan struct{}
	err      error  // written once, before done is closed
	deadline uint64 // slot-clock deadline; noDeadline for batch work
	seq      uint64 // admission order, assigned by push; the EDF tie-break
}

// jobQueue is the pool's bounded job buffer with an overload policy. It
// replaces the unbuffered jobs channel so that load shedding, typed
// closed-pool errors and graceful drain are expressible. Order is FIFO,
// or earliest-deadline-first when Options.EDF is set (DESIGN.md §14) —
// then ties break on admission sequence, DropOldest evicts the
// latest-deadline job instead of the head, and deadline-less jobs sort
// last.
type jobQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	items  []*poolJob // guarded by mu
	max    int
	policy OverloadPolicy
	edf    bool
	seq    uint64 // guarded by mu; admission counter
	closed bool   // guarded by mu

	met *poolMetrics
}

func newJobQueue(max int, policy OverloadPolicy, edf bool, met *poolMetrics) *jobQueue {
	q := &jobQueue{max: max, policy: policy, edf: edf, met: met}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// edfWorse orders jobs for eviction: the job with the later deadline
// (then later admission) is the least urgent.
func edfWorse(a, b *poolJob) bool {
	if a.deadline != b.deadline {
		return a.deadline > b.deadline
	}
	return a.seq > b.seq
}

// push enqueues a job, applying the overload policy when the queue is
// full. It fails the job (and returns its error) on a closed queue, a
// Reject overflow — never the job itself under DropOldest: there the
// *evicted* job fails with ErrJobShed and the new one is admitted.
func (q *jobQueue) push(j *poolJob) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return ErrPoolClosed
		}
		if len(q.items) < q.max {
			break
		}
		switch q.policy {
		case Reject:
			q.met.rejected()
			return ErrPoolOverloaded
		case DropOldest:
			// FIFO evicts the head; EDF evicts the least-urgent job —
			// shedding the frame with the most slack to spare, never the
			// one closest to its slot.
			victim := 0
			if q.edf {
				for i := 1; i < len(q.items); i++ {
					if edfWorse(q.items[i], q.items[victim]) {
						victim = i
					}
				}
			}
			old := q.items[victim]
			q.items = append(q.items[:victim], q.items[victim+1:]...)
			q.met.shed()
			old.err = ErrJobShed
			close(old.done)
		default: // Block
			q.cond.Wait()
		}
	}
	j.seq = q.seq
	q.seq++
	q.items = append(q.items, j)
	q.met.enqueued()
	q.cond.Broadcast()
	return nil
}

// pop blocks for the next job; nil means the queue is closed and
// drained, so the worker should exit.
func (q *jobQueue) pop() *poolJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil
	}
	// FIFO takes the head; EDF scans for the earliest (deadline, seq).
	// The queue is small and bounded, so the linear scan beats heap
	// bookkeeping and keeps eviction-by-index trivial.
	pick := 0
	if q.edf {
		for i := 1; i < len(q.items); i++ {
			if edfWorse(q.items[pick], q.items[i]) {
				pick = i
			}
		}
	}
	j := q.items[pick]
	q.items = append(q.items[:pick], q.items[pick+1:]...)
	q.met.dequeued()
	q.cond.Broadcast()
	return j
}

// depth reports the number of jobs waiting in the queue.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close marks the queue closed. Queued jobs stay queued — workers drain
// them — until failPending discards them.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// failPending fails every queued job with err and empties the queue;
// returns how many were dropped.
func (q *jobQueue) failPending(err error) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.items)
	for _, j := range q.items {
		q.met.dequeued()
		j.err = err
		close(j.done)
	}
	q.items = nil
	q.cond.Broadcast()
	return n
}

// poolMetrics holds the pool's telemetry handles; nil disables them at
// one branch per record. Worker utilization is derivable by a scraper as
// sum(bluefi_pool_job_seconds) / (bluefi_pool_workers × uptime); the
// jobs-in-flight gauge gives the instantaneous view.
type poolMetrics struct {
	reg      *obs.Registry // event sink for overload/fault events
	workers  *obs.Gauge
	queue    *obs.Gauge
	inflight *obs.Gauge
	jobs     *obs.Counter
	jobSecs  *obs.Histogram

	panics   *obs.Counter
	retries  *obs.Counter
	timeouts *obs.Counter
	sheds    *obs.Counter
	rejects  *obs.Counter
}

func newPoolMetrics(r *obs.Registry) *poolMetrics {
	if r == nil {
		return nil
	}
	return &poolMetrics{
		reg:      r,
		workers:  r.Gauge("bluefi_pool_workers", "synthesizer workers in the pool"),
		queue:    r.Gauge("bluefi_pool_queue_depth", "jobs enqueued but not yet picked up by a worker"),
		inflight: r.Gauge("bluefi_pool_jobs_inflight", "jobs currently executing"),
		jobs:     r.Counter("bluefi_pool_jobs_total", "jobs completed"),
		jobSecs: r.Histogram("bluefi_pool_job_seconds", "per-job execution latency",
			obs.ExpBuckets(1e-4, 3, 12)),
		panics:   r.Counter("bluefi_pool_worker_panics_total", "job panics recovered (worker respawned)"),
		retries:  r.Counter("bluefi_pool_job_retries_total", "job attempts re-run under the retry policy"),
		timeouts: r.Counter("bluefi_pool_job_timeouts_total", "jobs abandoned after JobTimeout"),
		sheds:    r.Counter("bluefi_pool_jobs_shed_total", "queued jobs evicted under DropOldest"),
		rejects:  r.Counter("bluefi_pool_jobs_rejected_total", "jobs refused under Reject"),
	}
}

func (m *poolMetrics) setWorkers(n int) {
	if m == nil {
		return
	}
	m.workers.Set(int64(n))
}

// enqueued/dequeued/finished bracket one job's life-cycle.
func (m *poolMetrics) enqueued() {
	if m == nil {
		return
	}
	m.queue.Inc()
}

func (m *poolMetrics) dequeued() {
	if m == nil {
		return
	}
	m.queue.Dec()
}

func (m *poolMetrics) started() {
	if m == nil {
		return
	}
	m.inflight.Inc()
}

func (m *poolMetrics) finished(seconds float64) {
	if m == nil {
		return
	}
	m.inflight.Dec()
	m.jobs.Inc()
	m.jobSecs.Observe(seconds)
}

func (m *poolMetrics) panicked() {
	if m == nil {
		return
	}
	m.panics.Inc()
	m.reg.Event("pool.worker_panic")
}

func (m *poolMetrics) retried() {
	if m == nil {
		return
	}
	m.retries.Inc()
	m.reg.Event("pool.retry")
}

func (m *poolMetrics) timedOut() {
	if m == nil {
		return
	}
	m.timeouts.Inc()
	m.reg.Event("pool.timeout")
}

func (m *poolMetrics) shed() {
	if m == nil {
		return
	}
	m.sheds.Inc()
	m.queue.Dec()
	m.reg.Event("pool.shed", obs.L("policy", "drop_oldest"))
}

func (m *poolMetrics) rejected() {
	if m == nil {
		return
	}
	m.rejects.Inc()
	m.reg.Event("pool.overload", obs.L("policy", "reject"))
}

// NewPool builds a pool of n independent Synthesizers with the same
// options; n ≤ 0 sizes it to GOMAXPROCS. The queue holds
// Options.QueueDepth jobs (default 4×workers) under Options.Overload.
func NewPool(opts Options, n int) (*Pool, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	met := newPoolMetrics(opts.Telemetry)
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 4 * n
	}
	p := &Pool{
		q:      newJobQueue(depth, opts.Overload, opts.EDF, met),
		opts:   opts,
		met:    met,
		obsCtx: obs.WithRegistry(context.Background(), opts.Telemetry),
	}
	if opts.Faults != nil {
		p.inj = faults.New(*opts.Faults, opts.Telemetry)
	}
	for i := 0; i < n; i++ {
		s, err := New(opts)
		if err != nil {
			p.q.close()
			p.wg.Wait()
			return nil, err
		}
		p.syns = append(p.syns, s)
		p.wg.Add(1)
		go p.worker(s)
	}
	p.met.setWorkers(len(p.syns))
	return p, nil
}

// worker is one pool goroutine's loop. A job panic — a bug in a job
// closure, or the injector's PanicPoint — is recovered here: the
// in-flight job fails with *PanicError and a fresh worker goroutine
// respawns around the same Synthesizer, so pool capacity survives
// crashing jobs.
func (p *Pool) worker(s *Synthesizer) {
	var cur *poolJob
	defer func() {
		if r := recover(); r != nil {
			p.met.panicked()
			if cur != nil {
				cur.err = &PanicError{Value: r}
				close(cur.done)
			}
			p.wg.Add(1)
			go p.worker(s)
		}
		p.wg.Done()
	}()
	for {
		j := p.q.pop()
		if j == nil {
			return
		}
		cur = j
		p.execute(s, j)
		cur = nil
	}
}

// execute runs one job on its worker. No recover here — panics unwind
// to the worker's respawn layer, which owns the job's failure.
func (p *Pool) execute(s *Synthesizer, j *poolJob) {
	p.met.started()
	_, sp := obs.StartSpan(p.obsCtx, "pool.job")
	defer func() { p.met.finished(sp.End().Seconds()) }()
	p.inj.PanicPoint()
	if d := p.inj.LatencyPenalty(0); d > 0 {
		time.Sleep(d)
	}
	j.err = j.fn(s)
	close(j.done)
}

// tryOne submits fn once with a slot deadline and waits for it,
// honoring JobTimeout. On timeout the attempt is abandoned: its worker
// still finishes it in the background, but the result is discarded
// (fn's contract: write only job-owned state).
func (p *Pool) tryOne(deadline uint64, fn func(*Synthesizer) error) error {
	j := &poolJob{fn: fn, done: make(chan struct{}), deadline: deadline}
	if err := p.q.push(j); err != nil {
		return err
	}
	if t := p.opts.JobTimeout; t > 0 {
		timer := time.NewTimer(t)
		defer timer.Stop()
		select {
		case <-j.done:
		case <-timer.C:
			p.met.timedOut()
			return ErrJobTimeout
		}
	} else {
		<-j.done
	}
	return j.err
}

// poolDo runs fn on a pool worker under the timeout and retry policy
// and returns its value; the job carries no slot deadline, so under EDF
// ordering it yields to deadline-stamped work.
func poolDo[T any](p *Pool, fn func(*Synthesizer) (T, error)) (T, error) {
	return poolDoDeadline(p, noDeadline, fn)
}

// poolDoDeadline is poolDo with a slot-clock deadline: under
// Options.EDF the queue services the earliest deadline first. Each
// attempt writes into an attempt-local cell, so a timed-out attempt
// finishing late can never race the winner.
func poolDoDeadline[T any](p *Pool, deadline uint64, fn func(*Synthesizer) (T, error)) (T, error) {
	var out T
	max := p.opts.Retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		cell := new(T)
		err = p.tryOne(deadline, func(s *Synthesizer) error {
			v, ferr := fn(s)
			if ferr != nil {
				return ferr
			}
			*cell = v
			return nil
		})
		if err == nil {
			out = *cell // safe: the attempt's done channel closed cleanly
			return out, nil
		}
		if attempt >= max || !retryable(err) || errors.Is(err, ErrPoolClosed) {
			return out, err
		}
		p.met.retried()
		time.Sleep(p.opts.Retry.backoffFor(attempt))
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.syns) }

// QueueDepth returns the number of jobs enqueued but not yet picked up
// by a worker — the fleet's per-shard stats surface it as backlog, and
// the session admission controller folds it into its headroom
// projection.
func (p *Pool) QueueDepth() int { return p.q.depth() }

// JobLatency returns the mean per-job execution latency in seconds and
// the job count it averages over — (0, 0) without telemetry or before
// the first job completes. The session admission controller converts it
// to slots as its per-segment service-time estimate.
func (p *Pool) JobLatency() (meanSeconds float64, jobs int64) {
	if p.met == nil {
		return 0, 0
	}
	n := p.met.jobSecs.Count()
	if n == 0 {
		return 0, 0
	}
	return p.met.jobSecs.Sum() / float64(n), n
}

// InjectedFaults returns how many faults the pool's injector has fired
// (0 without an armed Options.Faults plan) — chaos reports use it to
// tell "survived the storm" from "no storm happened".
func (p *Pool) InjectedFaults() int64 { return p.inj.Injected() }

// isClosed reports the close flag.
func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Close drains the pool and stops the workers: queued and in-flight
// jobs finish first. Jobs submitted after Close fail with ErrPoolClosed.
// Close and Shutdown are idempotent: later calls simply wait for the
// drain the first call started, so `defer pool.Close()` composes with
// an explicit Shutdown on the happy path.
func (p *Pool) Close() { _ = p.Shutdown(context.Background()) }

// Shutdown is Close with a deadline: it drains queued and in-flight
// jobs until ctx expires, then fails still-queued jobs with
// ErrPoolClosed and returns ctx.Err(). In-flight jobs cannot be
// interrupted (synthesis is CPU-bound); their workers exit as soon as
// they finish. A nil error means the pool drained completely. Repeated
// calls share the first call's drain and observe the same contract.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	first := !p.closed
	p.closed = true
	if first {
		p.drained = make(chan struct{})
		drained := p.drained
		go func() {
			p.wg.Wait()
			close(drained)
		}()
	}
	drained := p.drained
	p.mu.Unlock()
	if first {
		p.q.close()
	}
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		p.q.failPending(ErrPoolClosed)
		<-drained
		return ctx.Err()
	}
}

// BatchJob describes one synthesis job of a mixed batch: exactly one of
// the three fields must be set.
type BatchJob struct {
	Beacon *BeaconJob
	BR     *BRJob
	Raw    *RawGFSKJob
}

// BeaconJob is a BLE advertising synthesis request (see
// Synthesizer.Beacon).
type BeaconJob struct {
	ADStructures []byte
	Addr         [6]byte
	BLEChannel   int
}

// BRJob is a classic BR/EDR baseband synthesis request (see
// Synthesizer.BRPacket).
type BRJob struct {
	Device    Device
	Packet    *BasebandPacket
	BTChannel int
}

// RawGFSKJob is an arbitrary-air-bits synthesis request (see
// Synthesizer.RawGFSK).
type RawGFSKJob struct {
	AirBits []byte
	FreqMHz float64
	BLE     bool
}

// BatchResult pairs one job's outcome with its error; exactly one of the
// two fields is set. Err may be a synthesis error, ErrPoolClosed,
// ErrPoolOverloaded, ErrJobShed, ErrJobTimeout or a *PanicError.
type BatchResult struct {
	Packet *Packet
	Err    error
}

func runJob(s *Synthesizer, job BatchJob) BatchResult {
	switch {
	case job.Beacon != nil && job.BR == nil && job.Raw == nil:
		pkt, err := s.Beacon(job.Beacon.ADStructures, job.Beacon.Addr, job.Beacon.BLEChannel)
		return BatchResult{Packet: pkt, Err: err}
	case job.BR != nil && job.Beacon == nil && job.Raw == nil:
		pkt, err := s.BRPacket(job.BR.Device, job.BR.Packet, job.BR.BTChannel)
		return BatchResult{Packet: pkt, Err: err}
	case job.Raw != nil && job.Beacon == nil && job.BR == nil:
		pkt, err := s.RawGFSK(job.Raw.AirBits, job.Raw.FreqMHz, job.Raw.BLE)
		return BatchResult{Packet: pkt, Err: err}
	}
	return BatchResult{Err: fmt.Errorf("bluefi: batch job must set exactly one of Beacon, BR, Raw")}
}

// SynthesizeBatch runs a mixed batch of jobs across the pool and returns
// one result per job, in job order. Jobs are independent: an error in one
// does not abort the others, and on a closed pool every result carries
// ErrPoolClosed. Must not be called from inside another job (it would
// deadlock waiting for a free worker).
func (p *Pool) SynthesizeBatch(jobs []BatchJob) []BatchResult {
	results := make([]BatchResult, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := poolDo(p, func(s *Synthesizer) (BatchResult, error) {
				r := runJob(s, jobs[i])
				return r, r.Err
			})
			if err != nil {
				res = BatchResult{Err: err}
			}
			results[i] = res
		}()
	}
	wg.Wait()
	return results
}

// BeaconBatch synthesizes a fleet of BLE advertising packets — the
// beacon-deployment workload — returning one result per job, in order.
func (p *Pool) BeaconBatch(jobs []BeaconJob) []BatchResult {
	batch := make([]BatchJob, len(jobs))
	for i := range jobs {
		batch[i] = BatchJob{Beacon: &jobs[i]}
	}
	return p.SynthesizeBatch(batch)
}
