package bluefi_test

import (
	"bytes"
	"sync"
	"testing"

	"bluefi"
)

// fuzzSyn is shared across fuzz iterations — building a Synthesizer is
// the expensive part — and mutex-guarded because a Synthesizer's methods
// must not be called concurrently.
var (
	fuzzOnce sync.Once
	fuzzMu   sync.Mutex
	fuzzSyn  *bluefi.Synthesizer
)

func fuzzSynthesizer(t interface{ Fatal(...any) }) *bluefi.Synthesizer {
	fuzzOnce.Do(func() {
		s, err := bluefi.New(bluefi.Options{Mode: bluefi.RealTime})
		if err == nil {
			fuzzSyn = s
		}
	})
	if fuzzSyn == nil {
		t.Fatal("building fuzz synthesizer failed")
	}
	return fuzzSyn
}

// FuzzSynthesizeBeacon throws arbitrary AD structures, addresses and
// channel numbers at the full synthesis pipeline. The contract under
// fuzz: never panic, return a typed error for invalid input, and for
// valid input produce a non-empty PSDU deterministically (the same call
// twice yields the same bytes — the rehearsal search must stay
// reproducible whatever state earlier inputs left behind).
func FuzzSynthesizeBeacon(f *testing.F) {
	ib := bluefi.IBeacon{Major: 1, Minor: 2}
	f.Add(ib.ADStructures(), byte(1), 38)
	f.Add([]byte{}, byte(0), 38)
	f.Add([]byte{0x02, 0x01, 0x06}, byte(7), 37)
	f.Add(bytes.Repeat([]byte{0xFF}, 32), byte(9), 38)
	f.Add([]byte{0x1E}, byte(3), 99)
	f.Fuzz(func(t *testing.T, ad []byte, addrSeed byte, bleChannel int) {
		if len(ad) > 64 {
			ad = ad[:64] // anything past the 31-byte limit rejects the same way
		}
		syn := fuzzSynthesizer(t)
		addr := [6]byte{addrSeed, addrSeed ^ 0x55, 0xBF, 1, 2, addrSeed >> 1}

		fuzzMu.Lock()
		defer fuzzMu.Unlock()
		pkt, err := syn.Beacon(ad, addr, bleChannel)
		if err != nil {
			if pkt != nil {
				t.Fatal("non-nil packet alongside an error")
			}
			return // invalid input rejected cleanly
		}
		if len(pkt.PSDU) == 0 {
			t.Fatal("valid beacon produced an empty PSDU")
		}
		again, err := syn.Beacon(ad, addr, bleChannel)
		if err != nil {
			t.Fatalf("second synthesis of an accepted input failed: %v", err)
		}
		if !bytes.Equal(pkt.PSDU, again.PSDU) {
			t.Fatal("same beacon synthesized twice produced different PSDUs")
		}
		if pkt.RehearsalMismatches != again.RehearsalMismatches {
			t.Fatal("rehearsal verdict drifted between identical syntheses")
		}
	})
}
